//! Regenerates the paper's tables and figures from a synthetic trace,
//! and drives the streaming inference subsystem.
//!
//! Usage:
//!
//! ```text
//! repro [--config scaled|tiny|titan] [--seed N] [--out DIR]
//!       [--metrics-out FILE] <experiment>...
//! repro save-trace [--config C] [--seed N] --out FILE
//! repro train [--config C] [--seed N | --trace PATH] [--split ds1|ds2|ds3]
//!       [--model gbdt|lr] [--train-mode reference|exact|fast]
//!       [--features all|no-telemetry] --out ARTIFACT
//! repro serve --model ARTIFACT --trace PATH [--alerts-out FILE]
//!       [--metrics-out FILE] [--batch N] [--delay N] [--from M] [--until M]
//!       [--threads N] [--backend interpreted|compiled]
//! repro serve-net --model ARTIFACT [--listen ADDR] [--topology tiny|scaled|titan]
//!       [--from M] [--until M] [--batch N] [--delay N] [--threads N]
//!       [--backend interpreted|compiled] [--queue-cap N] [--conn-window N]
//!       [--record LOG]
//! repro fleet --addr ADDR [--conns N] [--nodes N] [--minutes N] [--rate N]
//!       [--sbe-rate N] [--seed N] [--window N] [--failure-conns N]
//!       [--corrupt-every N] [--metrics-out FILE]
//! repro check-bench --file BENCH_fastpath.json|BENCH_train.json|BENCH_sbed.json
//!       [--min-batch-speedup X] [--min-stream-speedup X]
//!       [--min-fast-speedup X] [--min-exact-speedup X]
//!       [--min-sbed-rps X] [--min-sbed-scale X]
//! ```
//!
//! `--metrics-out FILE` records pipeline observability metrics (trace
//! generation counts, feature-extraction and TwoStage counters, GBDT
//! training-loop progress) and writes the stable `obskit/1` JSON snapshot
//! to `FILE`. The snapshot is deterministic for a given config/seed.
//!
//! `<experiment>` is one or more of: `fig1 fig2 fig3 fig4 fig5 fig6 fig7
//! fig8 table1 fig10 table2 table3 fig11 table4 fig12 fig13 table5 table6`,
//! or the groups `characterization`, `prediction`, `all`.
//!
//! The `save-trace` / `train` / `serve` subcommands form the deployment
//! loop: persist a generated trace, train and ship a versioned TwoStage
//! pipeline artifact, then replay the trace through `streamd`'s online
//! scoring loop. `--trace PATH` accepts either a trace JSON file or a
//! directory containing `trace.json`. `serve --backend compiled` scores
//! through the flattened fastpath tables instead of the interpreted
//! trees — bit-identical output, higher throughput. `train
//! --train-mode fast` fits the GBDT through the histogram engine's
//! sibling-subtraction path (`exact`, the default, is bit-identical to
//! the original trainer). `check-bench` reads a report emitted by
//! `cargo bench` — a `BENCH_fastpath.json` (inference trajectory), a
//! `BENCH_train.json` (training trajectory), or a `BENCH_sbed.json`
//! (network-serving saturation), told apart by the embedded `schema`
//! field — and fails if the numbers fall below the floors: the CI
//! guard on all three performance trajectories.
//!
//! `serve-net` / `fleet` are the network pair: `serve-net` binds the
//! `sbed` TCP scoring daemon on `--listen` (printing the bound address,
//! so `--listen 127.0.0.1:0` works for scripting) and serves the
//! length-prefixed wire protocol until a client FINISH frame arrives;
//! `fleet` drives such a daemon with the seeded mock fleet and prints
//! the outcome. `serve-net --record LOG` appends every admitted frame
//! to `LOG` and, after the run, replays it through a fresh in-process
//! session as a determinism self-check — the replayed response
//! checksum, report, and metrics snapshot must be byte-identical to
//! the live run. `--threads` falls back to the `SBE_THREADS`
//! environment variable when unset (the CI parity matrix's knob).

use sbe_bench::{persist_json, WallClock};
use sbepred::experiments::{
    characterization as ch, extensions as ext, prediction as pr, ExperimentOutput, Lab, ModelKind,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use titan_sim::config::SimConfig;
use titan_sim::trace::TraceSet;

const CHARACTERIZATION: [&str; 8] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
];
const PREDICTION: [&str; 10] = [
    "table1", "fig10", "table2", "table3", "fig11", "table4", "fig12", "fig13", "table5", "table6",
];
const EXTENSIONS: [&str; 5] = [
    "ext_forecast",
    "ext_imbalance",
    "ext_retrain",
    "ext_oracle",
    "ext_importance",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--config scaled|tiny|titan] [--seed N] [--out DIR] \
         [--metrics-out FILE] <experiment>...\n\
         repro save-trace [--config C] [--seed N] --out FILE\n\
         repro train [--config C] [--seed N | --trace PATH] [--split ds1|ds2|ds3] \
         [--model gbdt|lr] [--train-mode reference|exact|fast] \
         [--features all|no-telemetry] --out ARTIFACT\n\
         repro serve --model ARTIFACT --trace PATH [--alerts-out FILE] \
         [--metrics-out FILE] [--batch N] [--delay N] [--from M] [--until M] [--threads N] \
         [--backend interpreted|compiled]\n\
         repro serve-net --model ARTIFACT [--listen ADDR] [--topology tiny|scaled|titan] \
         [--from M] [--until M] [--batch N] [--delay N] [--threads N] \
         [--backend interpreted|compiled] [--queue-cap N] [--conn-window N] [--record LOG]\n\
         repro fleet --addr ADDR [--conns N] [--nodes N] [--minutes N] [--rate N] \
         [--sbe-rate N] [--seed N] [--window N] [--failure-conns N] [--corrupt-every N] \
         [--metrics-out FILE]\n\
         repro adapt --model ARTIFACT --trace PATH [--from M] [--until M] \
         [--check-every N] [--threads N] [--verdicts-out FILE] [--metrics-out FILE]\n\
         repro check-bench --file REPORT.json [--file REPORT.json ...] \
         (schemas: fastpath, train, sbed, drift) \
         [--min-batch-speedup X] [--min-stream-speedup X] \
         [--min-fast-speedup X] [--min-exact-speedup X] \
         [--min-sbed-rps X] [--min-sbed-scale X] \
         [--min-drift-ratio X] [--max-swap-pause-ms N]\n\
         experiments: {} {} {} | groups: characterization prediction extensions all",
        CHARACTERIZATION.join(" "),
        PREDICTION.join(" "),
        EXTENSIONS.join(" ")
    );
    ExitCode::FAILURE
}

/// Builds the named simulator config.
fn build_config(config: &str, seed: u64) -> Option<SimConfig> {
    match config {
        "scaled" => Some(SimConfig::scaled(seed)),
        "tiny" => Some(SimConfig::tiny(seed)),
        "titan" => Some(SimConfig::titan_scale(seed)),
        other => {
            eprintln!("unknown config `{other}`");
            None
        }
    }
}

/// Generates a trace, narrating progress to stderr.
fn generate_trace(cfg: &SimConfig, seed: u64) -> Option<TraceSet> {
    eprintln!(
        "generating trace: {} nodes, {} days, seed {seed}...",
        cfg.topology.n_nodes(),
        cfg.days
    );
    match titan_sim::engine::generate(cfg) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("trace generation failed: {e}");
            None
        }
    }
}

/// Loads a persisted trace from a JSON file or a directory holding
/// `trace.json`.
fn load_trace(path: &Path) -> Option<TraceSet> {
    let file = if path.is_dir() {
        path.join("trace.json")
    } else {
        path.to_path_buf()
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read trace `{}`: {e}", file.display());
            return None;
        }
    };
    match serde_json::from_str(&text) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("could not parse trace `{}`: {e}", file.display());
            None
        }
    }
}

/// `repro save-trace`: generate a trace and persist it as JSON.
fn cmd_save_trace(args: &[String]) -> ExitCode {
    let mut config = "tiny".to_string();
    let mut seed = 42u64;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(v) => config = v.clone(),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(out) = out else {
        eprintln!("save-trace requires --out FILE");
        return ExitCode::FAILURE;
    };
    let Some(cfg) = build_config(&config, seed) else {
        return ExitCode::FAILURE;
    };
    let Some(trace) = generate_trace(&cfg, seed) else {
        return ExitCode::FAILURE;
    };
    let json = match serde_json::to_string(&trace) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("could not serialise trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    match std::fs::write(&out, json) {
        Ok(()) => {
            eprintln!(
                "trace written to {} ({} apruns, {} samples)",
                out.display(),
                trace.apruns().len(),
                trace.samples().len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write `{}`: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// `repro train`: fit a TwoStage pipeline on a split and ship it as a
/// versioned artifact.
fn cmd_train(args: &[String]) -> ExitCode {
    let mut config = "tiny".to_string();
    let mut seed = 42u64;
    let mut trace_path: Option<PathBuf> = None;
    let mut split_name = "ds1".to_string();
    let mut model_name = "gbdt".to_string();
    let mut train_mode = mlkit::hist::TrainMode::Exact;
    let mut features = "all".to_string();
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(v) => config = v.clone(),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--trace" => match it.next() {
                Some(v) => trace_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--split" => match it.next() {
                Some(v) => split_name = v.clone(),
                None => return usage(),
            },
            "--model" => match it.next() {
                Some(v) => model_name = v.clone(),
                None => return usage(),
            },
            "--train-mode" => match it.next().and_then(|v| parse_train_mode(v)) {
                Some(v) => train_mode = v,
                None => return usage(),
            },
            "--features" => match it.next() {
                Some(v) => features = v.clone(),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(out) = out else {
        eprintln!("train requires --out ARTIFACT");
        return ExitCode::FAILURE;
    };
    let trace = match &trace_path {
        Some(p) => load_trace(p),
        None => build_config(&config, seed).and_then(|cfg| generate_trace(&cfg, seed)),
    };
    let Some(trace) = trace else {
        return ExitCode::FAILURE;
    };
    match train_artifact(
        &trace,
        &split_name,
        &model_name,
        seed,
        train_mode,
        &features,
    ) {
        Ok((artifact, f1)) => {
            eprintln!(
                "trained {} on {}: test F1 {f1:.3}, {} offender nodes",
                artifact.model().name(),
                artifact.split_name(),
                artifact.offenders().len()
            );
            match artifact.save(&out) {
                Ok(()) => {
                    eprintln!("artifact written to {}", out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("could not write artifact: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("training failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a `--train-mode` value into the GBDT training engine.
fn parse_train_mode(v: &str) -> Option<mlkit::hist::TrainMode> {
    match v {
        "reference" => Some(mlkit::hist::TrainMode::Reference),
        "exact" => Some(mlkit::hist::TrainMode::Exact),
        "fast" => Some(mlkit::hist::TrainMode::Fast),
        _ => None,
    }
}

/// Fits the requested classifier on the split and bundles the pipeline.
fn train_artifact(
    trace: &TraceSet,
    split_name: &str,
    model_name: &str,
    seed: u64,
    train_mode: mlkit::hist::TrainMode,
    features: &str,
) -> Result<(streamd::artifact::PipelineArtifact, f64), Box<dyn std::error::Error>> {
    use sbepred::datasets::DsSplit;
    use sbepred::features::{FeatureExtractor, FeatureSpec};
    use sbepred::twostage::{prepare_with_extractor, run_classifier};
    use streamd::artifact::{PipelineArtifact, PipelineModel};

    let split = match split_name {
        "ds1" => DsSplit::ds1(trace)?,
        "ds2" => DsSplit::ds2(trace)?,
        "ds3" => DsSplit::ds3(trace)?,
        other => return Err(format!("unknown split `{other}` (ds1|ds2|ds3)").into()),
    };
    // `no-telemetry` ships an artifact scorable from the wire protocol
    // alone (the network path carries no per-node telemetry stream);
    // `all` matches the paper's full feature set for trace replay.
    let spec = match features {
        "all" => FeatureSpec::all(),
        "no-telemetry" => FeatureSpec::no_telemetry(),
        other => return Err(format!("unknown feature set `{other}` (all|no-telemetry)").into()),
    };
    let samples = sbepred::samples::build_samples(trace)?;
    let fx = FeatureExtractor::new(trace, &samples)?;
    let prepared = prepare_with_extractor(&fx, &samples, &split, &spec)?;
    // The concrete model types (not `ModelKind`'s boxed trait objects):
    // the artifact serialises the fitted model itself. Hyper-parameters
    // mirror `ModelKind::build`.
    let (model, outcome) = match model_name {
        "gbdt" => {
            let mut m = mlkit::gbdt::Gbdt::new()
                .n_trees(120)
                .max_depth(5)
                .learning_rate(0.1)
                .min_samples_leaf(20)
                .subsample(0.8)
                .pos_weight(2.0)
                .seed(seed)
                .train_mode(train_mode);
            let out = run_classifier(&prepared, &mut m)?;
            (PipelineModel::Gbdt(m), out)
        }
        "lr" => {
            let mut m = mlkit::linear::LogisticRegression::new()
                .learning_rate(0.5)
                .epochs(40)
                .batch_size(256)
                .pos_weight(2.0)
                .seed(seed);
            let out = run_classifier(&prepared, &mut m)?;
            (PipelineModel::Logistic(m), out)
        }
        other => return Err(format!("unknown model `{other}` (gbdt|lr)").into()),
    };
    let f1 = outcome.confusion()?.f1();
    let offenders: Vec<u32> = fx
        .history()
        .offender_nodes_before(split.train_end_min())
        .into_iter()
        .map(|n| n.0)
        .collect();
    let artifact = PipelineArtifact::new(
        spec,
        offenders,
        prepared.scaler.clone(),
        model,
        split.train_end_min(),
        split.name(),
    );
    compiled_self_check(&artifact, &prepared.test)?;
    Ok((artifact, f1))
}

/// Verifies the compiled fastpath scorer reproduces the interpreted
/// model bit for bit on the held-out test split before the artifact
/// ships. A mismatch means the flattening is broken for this specific
/// fitted ensemble — refuse to ship it.
fn compiled_self_check(
    artifact: &streamd::artifact::PipelineArtifact,
    test: &mlkit::dataset::Dataset,
) -> Result<(), Box<dyn std::error::Error>> {
    use mlkit::fastpath::FeatureFrame;

    let compiled = artifact.compile()?;
    let interpreted = artifact.model().predict_proba(test)?;
    let rows: Vec<Vec<f32>> = (0..test.len()).map(|i| test.x().row(i).to_vec()).collect();
    let frame = FeatureFrame::from_rows(&rows)?;
    let mut out = vec![0.0f32; rows.len()];
    compiled.predict_proba_into(&frame, &mut out)?;
    for (i, (a, b)) in interpreted.iter().zip(&out).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "compiled self-check failed at test row {i}: interpreted {a} vs compiled {b}"
            )
            .into());
        }
    }
    eprintln!(
        "compiled self-check: {} test rows bit-identical to the interpreted path",
        rows.len()
    );
    Ok(())
}

/// `repro serve`: replay a trace through the streaming scoring loop.
fn cmd_serve(args: &[String]) -> ExitCode {
    use streamd::serve::{serve_observed, ScorerBackend, ServeConfig};

    let mut model_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut alerts_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut batch = 64usize;
    let mut delay = 5u64;
    let mut from: Option<u64> = None;
    let mut until: Option<u64> = None;
    let mut threads = parkit::Threads::Auto;
    let mut backend = ScorerBackend::Interpreted;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => match it.next() {
                Some(v) => model_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--trace" => match it.next() {
                Some(v) => trace_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--alerts-out" => match it.next() {
                Some(v) => alerts_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => batch = v,
                None => return usage(),
            },
            "--delay" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => delay = v,
                None => return usage(),
            },
            "--from" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => from = Some(v),
                None => return usage(),
            },
            "--until" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => until = Some(v),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = parkit::Threads::Fixed(v),
                None => return usage(),
            },
            "--backend" => match it.next().and_then(|v| ScorerBackend::parse(v)) {
                Some(v) => backend = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(model_path), Some(trace_path)) = (model_path, trace_path) else {
        eprintln!("serve requires --model ARTIFACT and --trace PATH");
        return ExitCode::FAILURE;
    };
    let artifact = match streamd::artifact::PipelineArtifact::load(&model_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("could not load artifact `{}`: {e}", model_path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "artifact: {} trained on {} up to minute {}, {} offender nodes, schema {:#018x}",
        artifact.model().name(),
        artifact.split_name(),
        artifact.trained_end_min(),
        artifact.offenders().len(),
        artifact.schema_hash()
    );
    let Some(trace) = load_trace(&trace_path) else {
        return ExitCode::FAILURE;
    };
    let score_from = from.unwrap_or_else(|| artifact.trained_end_min());
    let score_until = until.unwrap_or_else(|| trace.config().total_minutes());
    let cfg = ServeConfig {
        batch_capacity: batch,
        max_delay_min: delay,
        score_from_min: score_from,
        score_until_min: score_until,
        threads,
        backend,
    };
    let mut rec = if metrics_out.is_some() {
        obskit::Recorder::new()
    } else {
        obskit::Recorder::null()
    };
    let mut alerts: Vec<streamd::serve::Alert> = Vec::new();
    let t0 = std::time::Instant::now();
    let report = match serve_observed(&trace, &artifact, &cfg, &mut alerts, &mut rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();
    let rate = report.scored.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "served window [{score_from}, {score_until}): {} events, {} launches, \
         {} requests ({} stage-2) in {} batches; {} alerts",
        report.n_events,
        report.n_launches,
        report.n_requests,
        report.n_stage2,
        report.n_batches,
        report.n_alerts
    );
    eprintln!(
        "scored {} launch-nodes in {elapsed:.1?} ({rate:.0} samples/sec, {:?} backend)",
        report.scored.len(),
        backend
    );
    let mut failures = 0;
    if let Some(path) = &alerts_out {
        match serde_json::to_string(&alerts) {
            Ok(json) => {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).ok();
                    }
                }
                match std::fs::write(path, json) {
                    Ok(()) => eprintln!("alert log written to {}", path.display()),
                    Err(e) => {
                        eprintln!("could not write alert log: {e}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("could not serialise alerts: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &metrics_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        match std::fs::write(path, rec.snapshot_json()) {
            Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write metrics snapshot: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro adapt`: continual-learning serve — replay a trace through the
/// drift-monitored scoring loop, retraining and hot-swapping champions
/// on pinned rules, and print the deterministic drift log (verdicts,
/// retrain points, promoted artifact checksums, final scores
/// fingerprint) to stdout. CI byte-compares that log across
/// `SBE_THREADS` settings.
fn cmd_adapt(args: &[String]) -> ExitCode {
    use driftd::adapt::{run_adapt, AdaptConfig};

    let mut model_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut verdicts_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut from: Option<u64> = None;
    let mut until: Option<u64> = None;
    let mut check_every: Option<u64> = None;
    let mut threads = default_threads();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => match it.next() {
                Some(v) => model_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--trace" => match it.next() {
                Some(v) => trace_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--verdicts-out" => match it.next() {
                Some(v) => verdicts_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--from" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => from = Some(v),
                None => return usage(),
            },
            "--until" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => until = Some(v),
                None => return usage(),
            },
            "--check-every" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => check_every = Some(v),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = parkit::Threads::Fixed(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(model_path), Some(trace_path)) = (model_path, trace_path) else {
        eprintln!("adapt requires --model ARTIFACT and --trace PATH");
        return ExitCode::FAILURE;
    };
    let artifact = match streamd::artifact::PipelineArtifact::load(&model_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("could not load artifact `{}`: {e}", model_path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(trace) = load_trace(&trace_path) else {
        return ExitCode::FAILURE;
    };
    let score_from = from.unwrap_or_else(|| artifact.trained_end_min());
    let score_until = until.unwrap_or_else(|| trace.config().total_minutes());
    let mut cfg = AdaptConfig::window(score_from, score_until);
    cfg.serve.threads = threads;
    cfg.retrain.threads = threads;
    if let Some(every) = check_every {
        cfg.check_every_min = every;
    }
    let mut rec = if metrics_out.is_some() {
        obskit::Recorder::new()
    } else {
        obskit::Recorder::null()
    };
    let mut alerts: Vec<streamd::serve::Alert> = Vec::new();
    let t0 = std::time::Instant::now();
    let report = match run_adapt(&trace, &artifact, &cfg, &mut alerts, &mut rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adapt failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();
    eprintln!(
        "adapted window [{score_from}, {score_until}): {} events, {} requests \
         ({} stage-2), {} labeled pairs, {} verdicts, {} retrains, {} promotions, \
         final generation {} in {elapsed:.1?}",
        report.n_events,
        report.n_requests,
        report.n_stage2,
        report.n_pairs,
        report.verdicts.len(),
        report.retrains.len(),
        report.promotions.len(),
        report.final_generation
    );
    let log = report.drift_log();
    print!("{log}");
    let mut failures = 0;
    if let Some(path) = &verdicts_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        match std::fs::write(path, &log) {
            Ok(()) => eprintln!("drift log written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write drift log: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &metrics_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        match std::fs::write(path, rec.snapshot_json()) {
            Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write metrics snapshot: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses a `--topology` value into a node universe.
fn parse_topology(v: &str) -> Option<titan_sim::topology::Topology> {
    use titan_sim::topology::Topology;
    let built = match v {
        "tiny" => Topology::tiny(),
        "scaled" => Topology::scaled(),
        "titan" => Topology::titan(),
        other => {
            eprintln!("unknown topology `{other}` (tiny|scaled|titan)");
            return None;
        }
    };
    match built {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("could not build topology `{v}`: {e}");
            None
        }
    }
}

/// Thread-count default for the network pair: `--threads` wins, then
/// the `SBE_THREADS` environment variable (the CI parity matrix's
/// knob), then auto.
fn default_threads() -> parkit::Threads {
    match std::env::var("SBE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) if n > 0 => parkit::Threads::Fixed(n),
        _ => parkit::Threads::Auto,
    }
}

/// `repro serve-net`: bind the sbed TCP scoring daemon and serve until
/// a client FINISH frame arrives.
fn cmd_serve_net(args: &[String]) -> ExitCode {
    use sbed::daemon::{Daemon, DaemonConfig};
    use std::sync::Arc;
    use streamd::serve::{ScorerBackend, ServeConfig};

    let mut model_path: Option<PathBuf> = None;
    let mut listen = "127.0.0.1:7811".to_string();
    let mut topology_name = "tiny".to_string();
    let mut batch = 64usize;
    let mut delay = 5u64;
    let mut from: Option<u64> = None;
    let mut until: Option<u64> = None;
    let mut threads = default_threads();
    let mut backend = ScorerBackend::Interpreted;
    let mut queue_cap = 1024usize;
    let mut conn_window = 64usize;
    let mut record: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => match it.next() {
                Some(v) => model_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => return usage(),
            },
            "--topology" => match it.next() {
                Some(v) => topology_name = v.clone(),
                None => return usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => batch = v,
                None => return usage(),
            },
            "--delay" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => delay = v,
                None => return usage(),
            },
            "--from" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => from = Some(v),
                None => return usage(),
            },
            "--until" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => until = Some(v),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = parkit::Threads::Fixed(v),
                None => return usage(),
            },
            "--backend" => match it.next().and_then(|v| ScorerBackend::parse(v)) {
                Some(v) => backend = v,
                None => return usage(),
            },
            "--queue-cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => queue_cap = v,
                None => return usage(),
            },
            "--conn-window" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => conn_window = v,
                None => return usage(),
            },
            "--record" => match it.next() {
                Some(v) => record = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(model_path) = model_path else {
        eprintln!("serve-net requires --model ARTIFACT");
        return ExitCode::FAILURE;
    };
    let artifact = match streamd::artifact::PipelineArtifact::load(&model_path) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("could not load artifact `{}`: {e}", model_path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(topology) = parse_topology(&topology_name) else {
        return ExitCode::FAILURE;
    };
    let score_from = from.unwrap_or_else(|| artifact.trained_end_min());
    let score_until = until.unwrap_or(score_from + 1440);
    let serve_cfg = ServeConfig {
        batch_capacity: batch,
        max_delay_min: delay,
        score_from_min: score_from,
        score_until_min: score_until,
        threads,
        backend,
    };
    let mut cfg = DaemonConfig::new(&listen, serve_cfg, topology);
    cfg.queue_capacity = queue_cap;
    cfg.conn_window = conn_window;
    cfg.record_log = record.clone();
    let daemon = match Daemon::spawn(Arc::clone(&artifact), cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("could not start daemon on `{listen}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The bound address goes to stdout so scripts can capture it even
    // with `--listen 127.0.0.1:0`.
    println!("listening {}", daemon.addr());
    eprintln!(
        "sbed: {} on {} ({} nodes), window [{score_from}, {score_until}), \
         {threads:?} threads, {backend:?} backend",
        artifact.model().name(),
        daemon.addr(),
        topology.n_nodes(),
    );
    let report = match daemon.join() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("daemon failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "served {} events over {} connections: {} requests ({} stage-2), {} batches, \
         {} alerts; {} rejected, {} overloads, {} transport errors",
        report.report.n_events,
        report.n_connections,
        report.report.n_requests,
        report.report.n_stage2,
        report.report.n_batches,
        report.report.n_alerts,
        report.n_rejected,
        report.n_overloads,
        report.n_transport_errors,
    );
    // Grep-able determinism anchor: the CI parity matrix compares this
    // line across SBE_THREADS values.
    println!("response_fnv {:#018x}", report.response_fnv);
    let Some(log_path) = record else {
        return ExitCode::SUCCESS;
    };
    // Replay self-check: re-feed the recorded admission sequence through
    // a fresh in-process session; every determinism surface must match
    // the live run byte for byte.
    match sbed::replay::replay_log_file(&log_path, &artifact, &serve_cfg, topology) {
        Ok(replayed) => {
            let fnv_ok = replayed.response_fnv == report.response_fnv;
            let report_ok = replayed.report == report.report;
            let snapshot_ok = replayed.snapshot == report.snapshot;
            if fnv_ok && report_ok && snapshot_ok {
                eprintln!(
                    "replay self-check: PASS ({} frames, response checksum, report, and \
                     metrics snapshot all byte-identical)",
                    replayed.n_frames
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "replay self-check: FAIL (checksum match: {fnv_ok}, report match: \
                     {report_ok}, snapshot match: {snapshot_ok})"
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "replay self-check: FAIL: could not replay `{}`: {e}",
                log_path.display()
            );
            ExitCode::FAILURE
        }
    }
}

/// `repro fleet`: drive a running sbed daemon with the seeded mock
/// fleet and print the outcome.
fn cmd_fleet(args: &[String]) -> ExitCode {
    use sbed::client::{run_fleet, Connection, FleetConfig};
    use sbed::fleet::{synth_events, SynthConfig};
    use std::net::SocketAddr;

    let mut addr: Option<SocketAddr> = None;
    let mut conns = 8usize;
    let mut nodes = 64u32;
    let mut minutes = 30u64;
    let mut rate = 4u32;
    let mut sbe_rate = 2u32;
    let mut seed = 42u64;
    let mut window = 32usize;
    let mut failure_conns = 0usize;
    let mut corrupt_every = 0u64;
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => addr = Some(v),
                None => return usage(),
            },
            "--conns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => conns = v,
                None => return usage(),
            },
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => nodes = v,
                None => return usage(),
            },
            "--minutes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => minutes = v,
                None => return usage(),
            },
            "--rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => rate = v,
                None => return usage(),
            },
            "--sbe-rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => sbe_rate = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--window" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => window = v,
                None => return usage(),
            },
            "--failure-conns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => failure_conns = v,
                None => return usage(),
            },
            "--corrupt-every" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => corrupt_every = v,
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("fleet requires --addr HOST:PORT");
        return ExitCode::FAILURE;
    };
    let synth = SynthConfig {
        seed,
        n_nodes: nodes,
        minutes,
        launches_per_min: rate,
        max_nodes_per_launch: 8,
        n_apps: 12,
        sbe_per_min: sbe_rate,
    };
    let events = synth_events(&synth);
    let fleet_cfg = FleetConfig {
        conns,
        window,
        failure_conns,
        corrupt_every,
    };
    eprintln!(
        "fleet: {} events over {} nodes / {} minutes -> {addr} ({} connections, \
         window {}, {} failure connections)",
        events.len(),
        nodes,
        minutes,
        conns,
        window,
        failure_conns,
    );
    // Wait for the daemon to come up — serve-net typically starts in a
    // sibling process an instant before us.
    let mut up = false;
    for _ in 0..40 {
        if Connection::connect(addr).is_ok() {
            up = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    if !up {
        eprintln!("no daemon reachable at {addr} after 10s");
        return ExitCode::FAILURE;
    }
    let clock = WallClock::new();
    let t0 = std::time::Instant::now();
    let outcome = match run_fleet(addr, &events, &fleet_cfg, &clock) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();
    let n_requests = events.len() as u64 + 1; // + FINISH
    let rps = n_requests as f64 / elapsed.as_secs_f64().max(1e-9);
    let overload_retries: u64 = outcome.stats.iter().map(|s| s.overload_retries).sum();
    let corruption_retries: u64 = outcome.stats.iter().map(|s| s.corruption_retries).sum();
    let mut latencies: Vec<u64> = outcome
        .stats
        .iter()
        .flat_map(|s| s.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    eprintln!(
        "fleet done in {elapsed:.1?}: {} acks, {} score responses ({rps:.0} req/s); \
         {overload_retries} overload retries, {corruption_retries} corruption retries",
        outcome.n_acks,
        outcome.scores.len(),
    );
    eprintln!(
        "latency: p50 {:.3} ms, p99 {:.3} ms",
        pct(0.50) as f64 / 1e6,
        pct(0.99) as f64 / 1e6
    );
    eprintln!(
        "report: {} events, {} requests ({} stage-2), {} batches, {} alerts, \
         snapshot fnv {:#018x}",
        outcome.report.n_events,
        outcome.report.n_requests,
        outcome.report.n_stage2,
        outcome.report.n_batches,
        outcome.report.n_alerts,
        outcome.report.snapshot_fnv,
    );
    if let Some(path) = &metrics_out {
        let mut rec = obskit::Recorder::new();
        outcome.observe(&mut rec);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        match std::fs::write(path, rec.snapshot_json()) {
            Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write metrics snapshot: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `repro check-bench`: gate CI on a performance trajectory.
///
/// Reads one or more bench report JSONs (`--file`, repeatable) and
/// dispatches each on its embedded `schema` field: `sbe-bench/fastpath/1`
/// (from `cargo bench --bench fastpath`) gates the compiled/interpreted
/// inference speedups, `sbe-bench/train/1` (from `cargo bench --bench
/// trainpath`) gates the histogram-engine training speedups,
/// `sbe-bench/sbed/1` (from `cargo bench --bench sbed`) gates
/// network-serving saturation and worker scaling, and `sbe-bench/drift/1`
/// (from `cargo bench --bench drift`) gates the drift monitor's streaming
/// overhead and the hot-swap pause. A missing or unreadable file is a
/// hard failure, and every report must clear its floors — all files are
/// checked before the verdict so one run surfaces every regression.
fn cmd_check_bench(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    // CI floors, deliberately below what the benches report on a quiet
    // machine: shared runners are noisy, and the gates exist to catch a
    // fast path regressing toward its baseline, not to flake on
    // scheduler jitter.
    //
    // Fastpath: batch sits well under the ~6x a quiet machine shows.
    // Stream is diluted by event replay and feature assembly, but since
    // the compiled backend grew batch-parallel feature assembly it must
    // never be slower than interpreted end to end — the floor is 1.0,
    // up from the 0.8 allowance that tolerated the serial-assembly
    // regression this floor now guards against.
    let mut min_batch = 3.0f64;
    let mut min_stream = 1.0f64;
    // Trainpath: the sibling-subtraction engine clears ~2x over the
    // reference trainer by construction (it builds half the histograms
    // and derives the rest); the exact engine must simply never lose to
    // the reference path it replaced as the default.
    let mut min_fast = 2.0f64;
    let mut min_exact = 1.0f64;
    // Sbed: a quiet machine pushes thousands of requests/sec through the
    // loopback daemon and scales ~1.7x from one worker to eight; the
    // floors catch the serving path collapsing (a lock on the hot path,
    // a per-request allocation storm) without flaking on two-core
    // runners where extra workers buy little.
    let mut min_sbed_rps = 500.0f64;
    let mut min_sbed_scale = 0.8f64;
    // Drift: the monitor and window ride the streaming path, so the
    // adaptive replay must retain at least 40% of plain serve
    // throughput end to end, and a hot swap — flush one pending batch,
    // exchange an Arc — must never pause the stream longer than a
    // generous quarter second even on a noisy shared runner.
    let mut min_drift_ratio = 0.4f64;
    let mut max_swap_pause_ns = 250_000_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => match it.next() {
                Some(v) => files.push(PathBuf::from(v)),
                None => return usage(),
            },
            "--min-batch-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_batch = v,
                None => return usage(),
            },
            "--min-stream-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_stream = v,
                None => return usage(),
            },
            "--min-fast-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_fast = v,
                None => return usage(),
            },
            "--min-exact-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_exact = v,
                None => return usage(),
            },
            "--min-sbed-rps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_sbed_rps = v,
                None => return usage(),
            },
            "--min-sbed-scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_sbed_scale = v,
                None => return usage(),
            },
            "--min-drift-ratio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_drift_ratio = v,
                None => return usage(),
            },
            "--max-swap-pause-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => max_swap_pause_ns = v.saturating_mul(1_000_000),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if files.is_empty() {
        eprintln!(
            "check-bench requires at least one --file \
             BENCH_fastpath.json|BENCH_train.json|BENCH_sbed.json|BENCH_drift.json"
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "check-bench: FAIL `{}`: could not read: {e}",
                    file.display()
                );
                failed = true;
                continue;
            }
        };
        let schema = serde_json::from_str::<serde_json::Value>(&text)
            .ok()
            .and_then(|v| v.get("schema").and_then(|s| s.as_str()).map(String::from));
        let outcome = match schema.as_deref() {
            Some(sbe_bench::FASTPATH_SCHEMA) => {
                check_fastpath_report(file, &text, min_batch, min_stream)
            }
            Some(sbe_bench::TRAIN_SCHEMA) => check_train_report(file, &text, min_fast, min_exact),
            Some(sbe_bench::SBED_SCHEMA) => {
                check_sbed_report(file, &text, min_sbed_rps, min_sbed_scale)
            }
            Some(sbe_bench::DRIFT_SCHEMA) => {
                check_drift_report(file, &text, min_drift_ratio, max_swap_pause_ns)
            }
            Some(other) => Err(format!("unknown bench report schema `{other}`")),
            None => Err("no `schema` field or not JSON".into()),
        };
        match outcome {
            Ok(()) => eprintln!("check-bench: PASS `{}`", file.display()),
            Err(e) => {
                eprintln!("check-bench: FAIL `{}`: {e}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses and gates a `sbe-bench/drift/1` continual-learning report.
fn check_drift_report(
    file: &Path,
    text: &str,
    min_ratio: f64,
    max_swap_pause_ns: u64,
) -> Result<(), String> {
    let report: sbe_bench::DriftReport = serde_json::from_str(text)
        .map_err(|e| format!("could not parse `{}`: {e}", file.display()))?;
    eprintln!(
        "drift bench ({} events, {} requests, {} labeled pairs, {} swap(s)):",
        report.workload.events,
        report.workload.requests,
        report.workload.pairs,
        report.workload.swaps
    );
    eprintln!("  plain serve: {:>12.0} events/s", report.plain_eps);
    eprintln!(
        "  adaptive:    {:>12.0} events/s ({:.2}x, floor {min_ratio:.2}x)",
        report.adapt_eps, report.adapt_ratio
    );
    eprintln!(
        "  swap pause:  {:.3} ms (ceiling {:.0} ms)",
        report.swap_pause_ns as f64 / 1e6,
        max_swap_pause_ns as f64 / 1e6
    );
    report.check(min_ratio, max_swap_pause_ns)
}

/// Parses and gates a `sbe-bench/fastpath/1` inference report.
fn check_fastpath_report(
    file: &Path,
    text: &str,
    min_batch: f64,
    min_stream: f64,
) -> Result<(), String> {
    let report: sbe_bench::FastpathReport = serde_json::from_str(text)
        .map_err(|e| format!("could not parse `{}`: {e}", file.display()))?;
    eprintln!(
        "fastpath bench ({} rows x {} features, {} trees, depth {}):",
        report.workload.batch_rows,
        report.workload.n_features,
        report.workload.n_trees,
        report.workload.max_depth
    );
    eprintln!(
        "  batch:  {:>12.0} -> {:>12.0} pps ({:.2}x, floor {min_batch:.2}x)",
        report.batch.interpreted_pps, report.batch.compiled_pps, report.batch.speedup
    );
    eprintln!(
        "  stream: {:>12.0} -> {:>12.0} pps ({:.2}x, floor {min_stream:.2}x)",
        report.stream.interpreted_pps, report.stream.compiled_pps, report.stream.speedup
    );
    report.check(min_batch, min_stream)
}

/// Parses and gates a `sbe-bench/train/1` training report.
fn check_train_report(
    file: &Path,
    text: &str,
    min_fast: f64,
    min_exact: f64,
) -> Result<(), String> {
    let report: sbe_bench::TrainReport = serde_json::from_str(text)
        .map_err(|e| format!("could not parse `{}`: {e}", file.display()))?;
    eprintln!(
        "trainpath bench ({} rows x {} features, {} trees, depth {}, {} bins):",
        report.workload.rows,
        report.workload.n_features,
        report.workload.n_trees,
        report.workload.max_depth,
        report.workload.n_bins
    );
    eprintln!(
        "  reference: {:>12.0} rvps serial / {:>12.0} parallel",
        report.reference.serial_rps, report.reference.parallel_rps
    );
    eprintln!(
        "  exact:     {:>12.0} rvps serial / {:>12.0} parallel ({:.2}x, floor {min_exact:.2}x)",
        report.exact.serial_rps, report.exact.parallel_rps, report.exact_speedup
    );
    eprintln!(
        "  fast:      {:>12.0} rvps serial / {:>12.0} parallel ({:.2}x, floor {min_fast:.2}x)",
        report.fast.serial_rps, report.fast.parallel_rps, report.fast_speedup
    );
    report.check(min_fast, min_exact)
}

/// Parses and gates a `sbe-bench/sbed/1` network-serving report.
fn check_sbed_report(file: &Path, text: &str, min_rps: f64, min_scale: f64) -> Result<(), String> {
    let report: sbe_bench::SbedReport = serde_json::from_str(text)
        .map_err(|e| format!("could not parse `{}`: {e}", file.display()))?;
    eprintln!(
        "sbed bench ({} connections, {} nodes, {} requests over {} minutes):",
        report.workload.conns,
        report.workload.n_nodes,
        report.workload.requests,
        report.workload.minutes
    );
    for rate in &report.rates {
        eprintln!(
            "  {} worker(s): {:>10.0} req/s (floor {min_rps:.0})",
            rate.workers, rate.requests_per_sec
        );
    }
    eprintln!(
        "  worker scaling: {:.2}x (floor {min_scale:.2}x)",
        report.scaling
    );
    eprintln!(
        "  fleet latency: p50 {:.3} ms, p99 {:.3} ms",
        report.latency.p50_ns as f64 / 1e6,
        report.latency.p99_ns as f64 / 1e6
    );
    report.check(min_rps, min_scale)
}

fn main() -> ExitCode {
    let all_args: Vec<String> = std::env::args().skip(1).collect();
    match all_args.first().map(String::as_str) {
        Some("save-trace") => return cmd_save_trace(&all_args[1..]),
        Some("train") => return cmd_train(&all_args[1..]),
        Some("serve") => return cmd_serve(&all_args[1..]),
        Some("adapt") => return cmd_adapt(&all_args[1..]),
        Some("serve-net") => return cmd_serve_net(&all_args[1..]),
        Some("fleet") => return cmd_fleet(&all_args[1..]),
        Some("check-bench") => return cmd_check_bench(&all_args[1..]),
        _ => {}
    }

    let mut config = "scaled".to_string();
    let mut seed = 42u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = all_args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => match args.next() {
                Some(v) => config = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--metrics-out" => match args.next() {
                Some(v) => metrics_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage();
    }

    // Expand groups.
    let mut ids: Vec<&str> = Vec::new();
    for w in &wanted {
        match w.as_str() {
            "all" => {
                ids.extend(CHARACTERIZATION);
                ids.extend(PREDICTION);
                ids.extend(EXTENSIONS);
            }
            "characterization" => ids.extend(CHARACTERIZATION),
            "prediction" => ids.extend(PREDICTION),
            "extensions" => ids.extend(EXTENSIONS),
            other
                if CHARACTERIZATION.contains(&other)
                    || PREDICTION.contains(&other)
                    || EXTENSIONS.contains(&other) =>
            {
                ids.push(Box::leak(other.to_string().into_boxed_str()))
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                return usage();
            }
        }
    }
    ids.dedup();

    let cfg = match config.as_str() {
        "scaled" => SimConfig::scaled(seed),
        "tiny" => SimConfig::tiny(seed),
        "titan" => SimConfig::titan_scale(seed),
        other => {
            eprintln!("unknown config `{other}`");
            return usage();
        }
    };

    eprintln!(
        "generating trace: {} nodes, {} days, seed {seed}...",
        cfg.topology.n_nodes(),
        cfg.days
    );
    // A full recorder only when metrics were requested; the null recorder
    // path is a single branch per event.
    let mut rec = if metrics_out.is_some() {
        obskit::Recorder::new()
    } else {
        obskit::Recorder::null()
    };
    let t0 = std::time::Instant::now();
    let trace = match titan_sim::engine::generate_observed(&cfg, &mut rec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "trace ready in {:.1?}: {} apruns, {} samples, positive rate {:.4}",
        t0.elapsed(),
        trace.apruns().len(),
        trace.samples().len(),
        trace.positive_rate()
    );
    // The bench crate owns the workspace's only wall clock; injecting it
    // restores real train-time columns in the tables.
    let wall = WallClock::new();
    let lab = match Lab::new(&trace) {
        Ok(l) => l.with_clock(&wall),
        Err(e) => {
            eprintln!("lab construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0;
    let emit = |out: ExperimentOutput| {
        println!("{out}");
        if let Some(dir) = &out_dir {
            if let Err(e) = persist_json(dir, &out) {
                eprintln!("warning: could not persist {}: {e}", out.id);
            }
        }
    };

    // table2 and table3 come from one pass; cache when both requested.
    let mut t2t3: Option<(ExperimentOutput, ExperimentOutput)> = None;
    for id in ids {
        let started = std::time::Instant::now();
        let result: sbepred::Result<ExperimentOutput> = match id {
            "fig1" => ch::fig1(&lab),
            "fig2" => ch::fig2(&lab),
            "fig3" => ch::fig3(&lab),
            "fig4" => ch::fig4(&lab),
            "fig5" => ch::fig5(&lab),
            "fig6" => ch::fig6(&lab),
            "fig7" => ch::fig7(&lab),
            "fig8" => ch::fig8(&lab),
            "table1" => pr::table1(&lab),
            "fig10" => pr::fig10(&lab),
            "table2" | "table3" => {
                if t2t3.is_none() {
                    match pr::table2_table3(&lab) {
                        Ok(pair) => t2t3 = Some(pair),
                        Err(e) => {
                            eprintln!("{id} failed: {e}");
                            failures += 1;
                            continue;
                        }
                    }
                }
                let (t2, t3) = t2t3.clone().expect("cached above");
                Ok(if id == "table2" { t2 } else { t3 })
            }
            "fig11" => pr::fig11(&lab),
            "table4" => pr::table4(&lab),
            "fig12" => pr::fig12(&lab),
            "fig13" => pr::fig13(&lab),
            "table5" => pr::table5(&lab),
            "table6" => pr::table6(&lab),
            "ext_forecast" => ext::ext_forecast(&lab),
            "ext_imbalance" => ext::ext_imbalance(&lab),
            "ext_retrain" => ext::ext_retrain(&lab),
            "ext_oracle" => ext::ext_oracle(&lab),
            "ext_importance" => ext::ext_importance(&lab),
            other => {
                eprintln!("unknown experiment `{other}`");
                failures += 1;
                continue;
            }
        };
        match result {
            Ok(out) => {
                emit(out);
                eprintln!("[{id} done in {:.1?}]\n", started.elapsed());
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &metrics_out {
        // One observed DS1 GBDT pass exercises the whole instrumented
        // pipeline (features -> TwoStage -> GBDT training loop) so the
        // snapshot covers every layer, not just trace generation.
        let mut observed_pass = || -> sbepred::Result<()> {
            let split = sbepred::datasets::DsSplit::ds1(lab.trace())?;
            let spec = sbepred::features::FeatureSpec::all();
            let prepared = sbepred::twostage::prepare_with_extractor_observed(
                lab.extractor(),
                lab.samples(),
                &split,
                &spec,
                &mut rec,
            )?;
            let mut model = ModelKind::Gbdt.build(seed);
            sbepred::twostage::run_classifier_observed(
                &prepared,
                &mut model,
                &mut rec,
                lab.clock(),
            )?;
            Ok(())
        };
        if let Err(e) = observed_pass() {
            eprintln!("metrics pass failed: {e}");
            failures += 1;
        } else {
            eprint!("{}", sbepred::report::MetricsReport::from_recorder(&rec));
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).ok();
                }
            }
            match std::fs::write(path, rec.snapshot_json()) {
                Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
                Err(e) => {
                    eprintln!("could not write metrics snapshot: {e}");
                    failures += 1;
                }
            }
        }
    }

    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
