//! `sbe-bench` — benchmark and reproduction harness.
//!
//! The `repro` binary regenerates every table and figure of the paper
//! (see `repro --help`); the Criterion benches under `benches/` measure
//! model training/prediction cost (Table III) and pipeline throughput.

use sbepred::experiments::ExperimentOutput;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Schema tag of [`FastpathReport`] / `BENCH_fastpath.json`.
pub const FASTPATH_SCHEMA: &str = "sbe-bench/fastpath/1";

/// One interpreted-vs-compiled throughput comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FastpathSection {
    /// Predictions per second through the interpreted path.
    pub interpreted_pps: f64,
    /// Predictions per second through the compiled fastpath.
    pub compiled_pps: f64,
    /// `compiled_pps / interpreted_pps`.
    pub speedup: f64,
}

impl FastpathSection {
    /// Builds a section from raw rates, deriving the speedup.
    #[must_use]
    pub fn from_rates(interpreted_pps: f64, compiled_pps: f64) -> FastpathSection {
        FastpathSection {
            interpreted_pps,
            compiled_pps,
            speedup: compiled_pps / interpreted_pps.max(f64::MIN_POSITIVE),
        }
    }
}

/// Workload shape the fastpath bench measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastpathWorkload {
    /// Rows in the batch-scoring buffer.
    pub batch_rows: usize,
    /// Feature columns per row.
    pub n_features: usize,
    /// Trees in the measured GBDT ensemble.
    pub n_trees: usize,
    /// Depth limit the measured ensemble was grown to.
    pub max_depth: usize,
}

/// Machine-readable fastpath benchmark report — the `BENCH_fastpath.json`
/// artifact CI emits and `repro check-bench` gates on.
///
/// The report compares the interpreted tree-walking scorer against the
/// compiled struct-of-arrays fastpath on the same fitted model, both for
/// raw batch scoring (`batch`) and for the end-to-end streaming serve
/// loop (`stream`, which dilutes the model-scoring speedup with feature
/// assembly and event replay).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastpathReport {
    /// Always [`FASTPATH_SCHEMA`].
    pub schema: String,
    /// Shape of the measured workload.
    pub workload: FastpathWorkload,
    /// Raw batch scoring, model inference only.
    pub batch: FastpathSection,
    /// End-to-end `streamd::serve` replay.
    pub stream: FastpathSection,
}

impl FastpathReport {
    /// Enforces speedup floors on the report.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the schema tag is wrong,
    /// a rate is non-finite or non-positive, or a speedup falls below
    /// its floor.
    pub fn check(&self, min_batch_speedup: f64, min_stream_speedup: f64) -> Result<(), String> {
        if self.schema != FASTPATH_SCHEMA {
            return Err(format!(
                "unexpected schema `{}` (want `{FASTPATH_SCHEMA}`)",
                self.schema
            ));
        }
        for (name, s) in [("batch", &self.batch), ("stream", &self.stream)] {
            let healthy = |r: f64| r.is_finite() && r > 0.0;
            if !healthy(s.interpreted_pps) || !healthy(s.compiled_pps) {
                return Err(format!(
                    "{name}: degenerate rates (interpreted {} pps, compiled {} pps)",
                    s.interpreted_pps, s.compiled_pps
                ));
            }
        }
        if self.batch.speedup < min_batch_speedup {
            return Err(format!(
                "batch speedup {:.2}x below floor {min_batch_speedup:.2}x",
                self.batch.speedup
            ));
        }
        if self.stream.speedup < min_stream_speedup {
            return Err(format!(
                "stream speedup {:.2}x below floor {min_stream_speedup:.2}x",
                self.stream.speedup
            ));
        }
        Ok(())
    }
}

/// Schema tag of [`TrainReport`] / `BENCH_train.json`.
pub const TRAIN_SCHEMA: &str = "sbe-bench/train/1";

/// Serial and parallel training throughput for one engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainEngineRates {
    /// Rows processed per second (`rows × trees / wall time`) with a
    /// serial thread policy.
    pub serial_rps: f64,
    /// Rows per second with the parallel (`Auto`) policy.
    pub parallel_rps: f64,
}

/// Workload shape the training bench measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainWorkload {
    /// Training rows.
    pub rows: usize,
    /// Feature columns per row.
    pub n_features: usize,
    /// Boosting rounds.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Quantile bins per feature.
    pub n_bins: usize,
}

/// Machine-readable training benchmark report — the `BENCH_train.json`
/// artifact CI emits and `repro check-bench` gates on.
///
/// `reference` is the pre-histogram-engine per-feature trainer
/// (`TrainMode::Reference`), the fixed baseline every floor is measured
/// against. `exact` is the default single-pass engine (bit-identical
/// trees); `fast` adds sibling subtraction and row-block parallelism
/// (split-identical, locked by the differential suite).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Always [`TRAIN_SCHEMA`].
    pub schema: String,
    /// Shape of the measured workload.
    pub workload: TrainWorkload,
    /// `TrainMode::Reference` throughput (the pre-PR trainer).
    pub reference: TrainEngineRates,
    /// `TrainMode::Exact` throughput.
    pub exact: TrainEngineRates,
    /// `TrainMode::Fast` throughput.
    pub fast: TrainEngineRates,
    /// `fast.serial_rps / reference.serial_rps` — the headline
    /// like-for-like (serial vs serial) engine speedup.
    pub fast_speedup: f64,
    /// `exact.serial_rps / reference.serial_rps`.
    pub exact_speedup: f64,
}

impl TrainReport {
    /// Builds a report from raw rates, deriving the speedups.
    #[must_use]
    pub fn from_rates(
        workload: TrainWorkload,
        reference: TrainEngineRates,
        exact: TrainEngineRates,
        fast: TrainEngineRates,
    ) -> TrainReport {
        let base = reference.serial_rps.max(f64::MIN_POSITIVE);
        TrainReport {
            schema: TRAIN_SCHEMA.into(),
            workload,
            reference,
            exact,
            fast,
            fast_speedup: fast.serial_rps / base,
            exact_speedup: exact.serial_rps / base,
        }
    }

    /// Enforces throughput floors on the report.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the schema tag is wrong, a
    /// rate is non-finite or non-positive, or a speedup falls below its
    /// floor.
    pub fn check(&self, min_fast_speedup: f64, min_exact_speedup: f64) -> Result<(), String> {
        if self.schema != TRAIN_SCHEMA {
            return Err(format!(
                "unexpected schema `{}` (want `{TRAIN_SCHEMA}`)",
                self.schema
            ));
        }
        let healthy = |r: f64| r.is_finite() && r > 0.0;
        for (name, e) in [
            ("reference", &self.reference),
            ("exact", &self.exact),
            ("fast", &self.fast),
        ] {
            if !healthy(e.serial_rps) || !healthy(e.parallel_rps) {
                return Err(format!(
                    "{name}: degenerate rates (serial {} rows/s, parallel {} rows/s)",
                    e.serial_rps, e.parallel_rps
                ));
            }
        }
        if self.fast_speedup < min_fast_speedup {
            return Err(format!(
                "fast-engine speedup {:.2}x below floor {min_fast_speedup:.2}x",
                self.fast_speedup
            ));
        }
        if self.exact_speedup < min_exact_speedup {
            return Err(format!(
                "exact-engine speedup {:.2}x below floor {min_exact_speedup:.2}x",
                self.exact_speedup
            ));
        }
        Ok(())
    }
}

/// Schema tag of [`SbedReport`] / `BENCH_sbed.json`.
pub const SBED_SCHEMA: &str = "sbe-bench/sbed/1";

/// Workload shape the sbed saturation bench measured.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SbedWorkload {
    /// Concurrent fleet connections.
    pub conns: usize,
    /// Nodes in the serving topology.
    pub n_nodes: u32,
    /// Requests per pass (events + the FINISH frame).
    pub requests: u64,
    /// Simulated minutes per pass.
    pub minutes: u64,
}

/// Saturation throughput at one scoring-worker count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SbedWorkerRate {
    /// `ServeConfig::threads = Fixed(workers)` scoring workers.
    pub workers: usize,
    /// End-to-end requests per second through the loopback daemon.
    pub requests_per_sec: f64,
}

/// Fleet-side request latency percentiles (send → admission ACK).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SbedLatency {
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// Machine-readable sbed saturation report — the `BENCH_sbed.json`
/// artifact CI emits and `repro check-bench` gates on.
///
/// The daemon sequences all scoring through one engine thread, so the
/// scaling column is a *no-collapse* gate, not a speedup claim: adding
/// scoring workers must never crater end-to-end throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SbedReport {
    /// Always [`SBED_SCHEMA`].
    pub schema: String,
    /// Shape of the measured workload.
    pub workload: SbedWorkload,
    /// Requests/sec at each measured worker count.
    pub rates: Vec<SbedWorkerRate>,
    /// Best multi-worker rate divided by the single-worker rate.
    pub scaling: f64,
    /// Fleet-side latency percentiles (from the run with the most
    /// workers).
    pub latency: SbedLatency,
}

impl SbedReport {
    /// Builds a report from raw rates, deriving the scaling ratio
    /// (best multi-worker rate over the single-worker rate; 1.0 when
    /// only one worker count was measured).
    #[must_use]
    pub fn from_rates(
        workload: SbedWorkload,
        rates: Vec<SbedWorkerRate>,
        latency: SbedLatency,
    ) -> SbedReport {
        let base = rates
            .iter()
            .find(|r| r.workers == 1)
            .or(rates.first())
            .map_or(f64::MIN_POSITIVE, |r| r.requests_per_sec)
            .max(f64::MIN_POSITIVE);
        let best_multi = rates
            .iter()
            .filter(|r| r.workers > 1)
            .map(|r| r.requests_per_sec)
            .fold(f64::NAN, f64::max);
        let scaling = if best_multi.is_nan() {
            1.0
        } else {
            best_multi / base
        };
        SbedReport {
            schema: SBED_SCHEMA.into(),
            workload,
            rates,
            scaling,
            latency,
        }
    }

    /// Enforces throughput floors on the report.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the schema tag is wrong,
    /// the report is empty, a rate is non-finite/non-positive or below
    /// `min_rps`, the scaling ratio falls below `min_scale`, or the
    /// latency percentiles are inconsistent.
    pub fn check(&self, min_rps: f64, min_scale: f64) -> Result<(), String> {
        if self.schema != SBED_SCHEMA {
            return Err(format!(
                "unexpected schema `{}` (want `{SBED_SCHEMA}`)",
                self.schema
            ));
        }
        if self.rates.is_empty() {
            return Err("no worker rates measured".into());
        }
        for r in &self.rates {
            if !r.requests_per_sec.is_finite() || r.requests_per_sec <= 0.0 {
                return Err(format!(
                    "degenerate rate at {} workers: {} req/s",
                    r.workers, r.requests_per_sec
                ));
            }
            if r.requests_per_sec < min_rps {
                return Err(format!(
                    "{:.0} req/s at {} workers below floor {min_rps:.0} req/s",
                    r.requests_per_sec, r.workers
                ));
            }
        }
        if self.scaling < min_scale {
            return Err(format!(
                "worker scaling {:.2}x below floor {min_scale:.2}x",
                self.scaling
            ));
        }
        if self.latency.p99_ns < self.latency.p50_ns {
            return Err(format!(
                "inconsistent latency percentiles: p99 {} ns < p50 {} ns",
                self.latency.p99_ns, self.latency.p50_ns
            ));
        }
        Ok(())
    }
}

/// Schema tag for the continual-learning overhead report.
pub const DRIFT_SCHEMA: &str = "sbe-bench/drift/1";

/// Workload shape the drift bench measured.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftWorkload {
    /// Stream events replayed per pass.
    pub events: u64,
    /// Score requests issued per pass.
    pub requests: u64,
    /// Labeled (score, outcome) pairs the monitor folded.
    pub pairs: u64,
    /// Hot swaps committed during the adaptive pass.
    pub swaps: u64,
}

/// Machine-readable continual-learning overhead report — the
/// `BENCH_drift.json` artifact CI emits and `repro check-bench` gates
/// on.
///
/// Two numbers matter: the drift monitor must ride the streaming path
/// nearly for free (`adapt_ratio` = adaptive events/sec over plain
/// serve events/sec), and the hot swap must pause the stream for no
/// longer than an ordinary batch flush.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftReport {
    /// Always [`DRIFT_SCHEMA`].
    pub schema: String,
    /// Shape of the measured workload.
    pub workload: DriftWorkload,
    /// Plain `serve_observed` replay, events per second.
    pub plain_eps: f64,
    /// Adaptive `run_adapt` replay (monitor + window riding along, no
    /// verdict fired), events per second.
    pub adapt_eps: f64,
    /// `adapt_eps / plain_eps` — the monitor's streaming overhead.
    pub adapt_ratio: f64,
    /// Worst observed artifact-swap pause (prepare + flush + commit),
    /// nanoseconds.
    pub swap_pause_ns: u64,
}

impl DriftReport {
    /// Builds a report from raw throughputs, deriving the overhead
    /// ratio.
    #[must_use]
    pub fn from_rates(
        workload: DriftWorkload,
        plain_eps: f64,
        adapt_eps: f64,
        swap_pause_ns: u64,
    ) -> DriftReport {
        DriftReport {
            schema: DRIFT_SCHEMA.into(),
            workload,
            plain_eps,
            adapt_eps,
            adapt_ratio: adapt_eps / plain_eps.max(f64::MIN_POSITIVE),
            swap_pause_ns,
        }
    }

    /// Enforces the overhead floors on the report.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the schema tag is wrong, a
    /// throughput is non-finite/non-positive, the monitor overhead
    /// pushes `adapt_ratio` below `min_ratio`, or the swap pause
    /// exceeds `max_swap_pause_ns`.
    pub fn check(&self, min_ratio: f64, max_swap_pause_ns: u64) -> Result<(), String> {
        if self.schema != DRIFT_SCHEMA {
            return Err(format!(
                "unexpected schema `{}` (want `{DRIFT_SCHEMA}`)",
                self.schema
            ));
        }
        for (name, v) in [("plain_eps", self.plain_eps), ("adapt_eps", self.adapt_eps)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("degenerate {name}: {v}"));
            }
        }
        if self.adapt_ratio < min_ratio {
            return Err(format!(
                "adaptive replay retains {:.2}x of plain serve throughput, \
                 below floor {min_ratio:.2}x",
                self.adapt_ratio
            ));
        }
        if self.swap_pause_ns > max_swap_pause_ns {
            return Err(format!(
                "swap pause {} ns exceeds ceiling {max_swap_pause_ns} ns",
                self.swap_pause_ns
            ));
        }
        Ok(())
    }
}

/// The workspace's only real [`obskit::Clock`]: nanoseconds since the
/// clock's construction, backed by [`std::time::Instant`].
///
/// It lives here — not in `obskit` — because the bench crate is the one
/// place detlint permits wall-clock reads (rule D002). Library code takes
/// `&dyn Clock` and defaults to [`obskit::NullClock`]; the `repro` binary
/// injects a `WallClock` when real train-time columns are wanted.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a clock whose origin is "now".
    #[must_use]
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl obskit::Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Writes an experiment's JSON payload next to the printed report.
///
/// # Errors
///
/// Returns an `std::io::Error` when the directory cannot be created or
/// the file cannot be written.
pub fn persist_json(dir: &Path, out: &ExperimentOutput) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", out.id));
    let payload = serde_json::json!({
        "id": out.id,
        "title": out.title,
        "result": out.json,
    });
    std::fs::write(path, serde_json::to_string_pretty(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        use obskit::Clock;
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    fn report(batch: f64, stream: f64) -> FastpathReport {
        FastpathReport {
            schema: FASTPATH_SCHEMA.into(),
            workload: FastpathWorkload {
                batch_rows: 4096,
                n_features: 80,
                n_trees: 120,
                max_depth: 8,
            },
            batch: FastpathSection::from_rates(1_000.0, 1_000.0 * batch),
            stream: FastpathSection::from_rates(500.0, 500.0 * stream),
        }
    }

    #[test]
    fn fastpath_report_passes_at_or_above_floor() {
        assert!(report(5.0, 1.5).check(5.0, 1.5).is_ok());
        assert!(report(8.0, 2.0).check(5.0, 1.5).is_ok());
    }

    #[test]
    fn fastpath_report_fails_below_floor() {
        let err = report(4.9, 2.0).check(5.0, 1.0).unwrap_err();
        assert!(err.contains("batch speedup"), "{err}");
        let err = report(8.0, 0.9).check(5.0, 1.0).unwrap_err();
        assert!(err.contains("stream speedup"), "{err}");
    }

    #[test]
    fn fastpath_report_rejects_wrong_schema_and_degenerate_rates() {
        let mut r = report(5.0, 2.0);
        r.schema = "sbe-bench/fastpath/0".into();
        assert!(r.check(1.0, 1.0).unwrap_err().contains("schema"));
        let mut r = report(5.0, 2.0);
        r.batch.interpreted_pps = 0.0;
        assert!(r.check(0.0, 0.0).unwrap_err().contains("degenerate"));
        let mut r = report(5.0, 2.0);
        r.stream.compiled_pps = f64::NAN;
        assert!(r.check(0.0, 0.0).unwrap_err().contains("degenerate"));
    }

    #[test]
    fn fastpath_report_round_trips_through_json() {
        let r = report(6.0, 1.8);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: FastpathReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, FASTPATH_SCHEMA);
        assert_eq!(back.batch.speedup.to_bits(), r.batch.speedup.to_bits());
        assert_eq!(back.workload.n_trees, 120);
    }

    fn train_report(exact: f64, fast: f64) -> TrainReport {
        let base = 100_000.0;
        TrainReport::from_rates(
            TrainWorkload {
                rows: 12_000,
                n_features: 64,
                n_trees: 150,
                max_depth: 10,
                n_bins: 64,
            },
            TrainEngineRates {
                serial_rps: base,
                parallel_rps: base * 2.0,
            },
            TrainEngineRates {
                serial_rps: base * exact,
                parallel_rps: base * exact * 2.0,
            },
            TrainEngineRates {
                serial_rps: base * fast,
                parallel_rps: base * fast * 2.0,
            },
        )
    }

    #[test]
    fn train_report_passes_at_or_above_floor() {
        assert!(train_report(1.2, 2.0).check(2.0, 1.0).is_ok());
        assert!(train_report(1.5, 3.5).check(2.0, 1.0).is_ok());
    }

    #[test]
    fn train_report_fails_below_floor() {
        let err = train_report(1.2, 1.9).check(2.0, 1.0).unwrap_err();
        assert!(err.contains("fast-engine speedup"), "{err}");
        let err = train_report(0.8, 2.5).check(2.0, 1.0).unwrap_err();
        assert!(err.contains("exact-engine speedup"), "{err}");
    }

    #[test]
    fn train_report_rejects_wrong_schema_and_degenerate_rates() {
        let mut r = train_report(1.2, 2.5);
        r.schema = "sbe-bench/train/0".into();
        assert!(r.check(0.0, 0.0).unwrap_err().contains("schema"));
        let mut r = train_report(1.2, 2.5);
        r.fast.parallel_rps = f64::NAN;
        assert!(r.check(0.0, 0.0).unwrap_err().contains("degenerate"));
        let mut r = train_report(1.2, 2.5);
        r.reference.serial_rps = 0.0;
        assert!(r.check(0.0, 0.0).unwrap_err().contains("degenerate"));
    }

    #[test]
    fn train_report_round_trips_through_json() {
        let r = train_report(1.3, 2.8);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: TrainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, TRAIN_SCHEMA);
        assert_eq!(back.fast_speedup.to_bits(), r.fast_speedup.to_bits());
        assert_eq!(back.workload.n_trees, 150);
    }

    fn sbed_report(rps: f64, scale: f64) -> SbedReport {
        SbedReport::from_rates(
            SbedWorkload {
                conns: 64,
                n_nodes: 1_600,
                requests: 6_121,
                minutes: 120,
            },
            vec![
                SbedWorkerRate {
                    workers: 1,
                    requests_per_sec: rps,
                },
                SbedWorkerRate {
                    workers: 2,
                    requests_per_sec: rps * scale,
                },
                SbedWorkerRate {
                    workers: 8,
                    requests_per_sec: rps * scale * 0.9,
                },
            ],
            SbedLatency {
                p50_ns: 40_000,
                p99_ns: 900_000,
            },
        )
    }

    #[test]
    fn sbed_report_passes_at_or_above_floor() {
        assert!(sbed_report(5_000.0, 1.1).check(1_000.0, 0.5).is_ok());
        let r = sbed_report(5_000.0, 1.1);
        assert!((r.scaling - 1.1).abs() < 1e-9, "scaling {}", r.scaling);
    }

    #[test]
    fn sbed_report_fails_below_floor() {
        let err = sbed_report(900.0, 1.0).check(1_000.0, 0.5).unwrap_err();
        assert!(err.contains("below floor"), "{err}");
        let err = sbed_report(5_000.0, 0.4).check(1_000.0, 0.5).unwrap_err();
        assert!(err.contains("scaling"), "{err}");
    }

    #[test]
    fn sbed_report_rejects_wrong_schema_and_degenerate_shapes() {
        let mut r = sbed_report(5_000.0, 1.0);
        r.schema = "sbe-bench/sbed/0".into();
        assert!(r.check(0.0, 0.0).unwrap_err().contains("schema"));
        let mut r = sbed_report(5_000.0, 1.0);
        r.rates.clear();
        assert!(r.check(0.0, 0.0).unwrap_err().contains("no worker rates"));
        let mut r = sbed_report(5_000.0, 1.0);
        r.rates[1].requests_per_sec = f64::NAN;
        assert!(r.check(0.0, 0.0).unwrap_err().contains("degenerate"));
        let mut r = sbed_report(5_000.0, 1.0);
        r.latency = SbedLatency {
            p50_ns: 10,
            p99_ns: 5,
        };
        assert!(r.check(0.0, 0.0).unwrap_err().contains("percentiles"));
    }

    #[test]
    fn sbed_report_round_trips_through_json() {
        let r = sbed_report(7_500.0, 1.2);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: SbedReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, SBED_SCHEMA);
        assert_eq!(back.scaling.to_bits(), r.scaling.to_bits());
        assert_eq!(back.rates.len(), 3);
        assert_eq!(back.latency.p99_ns, 900_000);
    }

    fn drift_report(ratio: f64, pause_ns: u64) -> DriftReport {
        DriftReport::from_rates(
            DriftWorkload {
                events: 10_000,
                requests: 2_500,
                pairs: 400,
                swaps: 1,
            },
            20_000.0,
            20_000.0 * ratio,
            pause_ns,
        )
    }

    #[test]
    fn drift_report_passes_at_or_above_floor() {
        assert!(drift_report(0.9, 1_000_000).check(0.5, 250_000_000).is_ok());
        assert!(drift_report(0.5, 250_000_000)
            .check(0.5, 250_000_000)
            .is_ok());
    }

    #[test]
    fn drift_report_fails_below_floor() {
        let err = drift_report(0.4, 1_000)
            .check(0.5, 250_000_000)
            .unwrap_err();
        assert!(err.contains("throughput"), "{err}");
        let err = drift_report(0.9, 300_000_000)
            .check(0.5, 250_000_000)
            .unwrap_err();
        assert!(err.contains("swap pause"), "{err}");
    }

    #[test]
    fn drift_report_rejects_wrong_schema_and_degenerate_rates() {
        let mut r = drift_report(0.9, 1_000);
        r.schema = "nope".into();
        assert!(r.check(0.0, u64::MAX).unwrap_err().contains("schema"));
        let mut r = drift_report(0.9, 1_000);
        r.adapt_eps = f64::NAN;
        assert!(r.check(0.0, u64::MAX).unwrap_err().contains("adapt_eps"));
        let mut r = drift_report(0.9, 1_000);
        r.plain_eps = 0.0;
        assert!(r.check(0.0, u64::MAX).unwrap_err().contains("plain_eps"));
    }

    #[test]
    fn drift_report_round_trips_through_json() {
        let r = drift_report(0.8, 42_000);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: DriftReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, DRIFT_SCHEMA);
        assert_eq!(back.adapt_ratio.to_bits(), r.adapt_ratio.to_bits());
        assert_eq!(back.swap_pause_ns, 42_000);
        assert_eq!(back.workload.swaps, 1);
    }

    #[test]
    fn persist_writes_file() {
        let dir = std::env::temp_dir().join("sbe-bench-test");
        let out = ExperimentOutput {
            id: "unit".into(),
            title: "t".into(),
            text: String::new(),
            json: serde_json::json!({"x": 1}),
        };
        persist_json(&dir, &out).unwrap();
        let s = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(s.contains("\"x\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
