//! `sbe-bench` — benchmark and reproduction harness.
//!
//! The `repro` binary regenerates every table and figure of the paper
//! (see `repro --help`); the Criterion benches under `benches/` measure
//! model training/prediction cost (Table III) and pipeline throughput.

use sbepred::experiments::ExperimentOutput;
use std::path::Path;
use std::time::Instant;

/// The workspace's only real [`obskit::Clock`]: nanoseconds since the
/// clock's construction, backed by [`std::time::Instant`].
///
/// It lives here — not in `obskit` — because the bench crate is the one
/// place detlint permits wall-clock reads (rule D002). Library code takes
/// `&dyn Clock` and defaults to [`obskit::NullClock`]; the `repro` binary
/// injects a `WallClock` when real train-time columns are wanted.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a clock whose origin is "now".
    #[must_use]
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl obskit::Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Writes an experiment's JSON payload next to the printed report.
///
/// # Errors
///
/// Returns an `std::io::Error` when the directory cannot be created or
/// the file cannot be written.
pub fn persist_json(dir: &Path, out: &ExperimentOutput) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", out.id));
    let payload = serde_json::json!({
        "id": out.id,
        "title": out.title,
        "result": out.json,
    });
    std::fs::write(path, serde_json::to_string_pretty(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        use obskit::Clock;
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn persist_writes_file() {
        let dir = std::env::temp_dir().join("sbe-bench-test");
        let out = ExperimentOutput {
            id: "unit".into(),
            title: "t".into(),
            text: String::new(),
            json: serde_json::json!({"x": 1}),
        };
        persist_json(&dir, &out).unwrap();
        let s = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(s.contains("\"x\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
