//! Interprocedural self-tests: the `fixtures/hotpath/` corpus seeds one
//! violation per rule (D006/D007/D008), each reached across a file
//! boundary, and the tests pin the *exact* diagnostics — rule, site
//! position, and the full root → site call chain in the message. Each
//! rule also gets a waived case (site-level inline waiver discharges the
//! obligation for the root) and a stale-config case (an `[[allow]]`
//! entry that matches nothing must surface as W001).

use detlint::config;
use detlint::diag::render_text;
use detlint::{check_sources, Diagnostic, SourceFile};

/// Loads one corpus file as a strict-profile source of the synthetic
/// `hotfix` crate; `module` decides the qname segment (`serve`,
/// `tables`, ...).
fn fixture(module: &str, name: &str) -> SourceFile {
    let path = format!("{}/fixtures/hotpath/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    SourceFile {
        rel_path: format!("crates/hotfix/src/{module}.rs"),
        crate_name: "hotfix".to_string(),
        src,
    }
}

fn cfg(toml: &str) -> config::Config {
    config::parse(toml).expect("fixture config must parse")
}

/// (rule, path, line, col, message) of every non-waived error.
fn blocking(diags: &[Diagnostic]) -> Vec<(String, String, u32, u32, String)> {
    diags
        .iter()
        .filter(|d| d.is_blocking())
        .map(|d| {
            (
                d.rule.to_string(),
                d.path.clone(),
                d.line,
                d.col,
                d.message.clone(),
            )
        })
        .collect()
}

#[test]
fn d006_reports_the_cross_file_call_chain() {
    let files = [
        fixture("serve", "d006_serve"),
        fixture("tables", "d006_tables"),
    ];
    let report = check_sources(
        &files,
        &cfg("[[hotpath]]\nroot = \"hotfix::serve::score_root\"\nrules = \"D006\"\n"),
    );
    assert_eq!(
        blocking(&report.diagnostics),
        vec![(
            "D006".to_string(),
            "crates/hotfix/src/tables.rs".to_string(),
            4,
            7,
            "hot path `hotfix::serve::score_root` may panic: slice indexing `[...]` may be \
             out of bounds (via hotfix::serve::score_root → hotfix::serve::lookup → \
             hotfix::tables::pick)"
                .to_string(),
        )],
    );
}

#[test]
fn d007_reports_the_cross_file_call_chain() {
    let files = [
        fixture("serve", "d007_serve"),
        fixture("buffer", "d007_buffer"),
    ];
    let report = check_sources(
        &files,
        &cfg("[[hotpath]]\nroot = \"hotfix::serve::assemble_root\"\nrules = \"D007\"\n"),
    );
    assert_eq!(
        blocking(&report.diagnostics),
        vec![(
            "D007".to_string(),
            "crates/hotfix/src/buffer.rs".to_string(),
            5,
            13,
            "hot path `hotfix::serve::assemble_root` may allocate: `.push()` allocates \
             (via hotfix::serve::assemble_root → hotfix::buffer::push_all)"
                .to_string(),
        )],
    );
}

#[test]
fn d008_reports_the_cross_file_call_chain() {
    let files = [
        fixture("serve", "d008_serve"),
        fixture("clock", "d008_clock"),
    ];
    let report = check_sources(
        &files,
        &cfg("[[hotpath]]\nroot = \"hotfix::serve::serve_root\"\nrules = \"D008\"\n"),
    );
    assert_eq!(
        blocking(&report.diagnostics),
        vec![(
            "D008".to_string(),
            "crates/hotfix/src/clock.rs".to_string(),
            4,
            18,
            "hot path `hotfix::serve::serve_root` may read a nondeterminism source: \
             `available_parallelism` is a nondeterminism source \
             (via hotfix::serve::serve_root → hotfix::clock::lane_count)"
                .to_string(),
        )],
    );
}

#[test]
fn site_waivers_discharge_the_root_obligation() {
    let cases = [
        (
            "D006",
            "d006_waived",
            "hotfix::serve::score_root",
            "caller clamps",
        ),
        (
            "D007",
            "d007_waived",
            "hotfix::serve::assemble_root",
            "pre-sized by the caller",
        ),
        (
            "D008",
            "d008_waived",
            "hotfix::serve::serve_root",
            "thread-count selection only",
        ),
    ];
    for (rule, name, root, reason_frag) in cases {
        let files = [fixture("serve", name)];
        let report = check_sources(
            &files,
            &cfg(&format!(
                "[[hotpath]]\nroot = \"{root}\"\nrules = \"{rule}\"\n"
            )),
        );
        assert_eq!(
            report.blocking(),
            0,
            "{name}: waived fixture must not block: {:#?}",
            report.diagnostics
        );
        let waived: Vec<_> = report.diagnostics.iter().filter(|d| d.waived).collect();
        assert_eq!(waived.len(), 1, "{name}: exactly one waived diagnostic");
        assert_eq!(waived[0].rule, rule);
        assert!(
            waived[0]
                .waive_reason
                .as_deref()
                .is_some_and(|r| r.contains(reason_frag)),
            "{name}: waiver must carry its written reason, got {:?}",
            waived[0].waive_reason
        );
        // The waiver suppressed something, so no W002 may fire.
        assert!(
            report.diagnostics.iter().all(|d| d.rule != "W002"),
            "{name}: no stale-waiver warning expected"
        );
    }
}

#[test]
fn stale_config_allows_surface_as_w001() {
    let cases = [
        (
            "D006",
            "d006_serve",
            "d006_tables",
            "tables",
            "hotfix::serve::score_root",
        ),
        (
            "D007",
            "d007_serve",
            "d007_buffer",
            "buffer",
            "hotfix::serve::assemble_root",
        ),
        (
            "D008",
            "d008_serve",
            "d008_clock",
            "clock",
            "hotfix::serve::serve_root",
        ),
    ];
    for (rule, root_fix, site_fix, site_mod, root) in cases {
        let files = [fixture("serve", root_fix), fixture(site_mod, site_fix)];
        // The allow names a file that produces no diagnostic: the seeded
        // violation must still block AND the entry must be flagged stale.
        let report = check_sources(
            &files,
            &cfg(&format!(
                "[[hotpath]]\nroot = \"{root}\"\nrules = \"{rule}\"\n\n\
                 [[allow]]\nrule = \"{rule}\"\npath = \"crates/hotfix/src/elsewhere.rs\"\n\
                 reason = \"stale on purpose\"\n"
            )),
        );
        assert_eq!(
            report.blocking(),
            1,
            "{rule}: seeded violation must still block"
        );
        let w001: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "W001")
            .collect();
        assert_eq!(w001.len(), 1, "{rule}: stale allow must raise W001");
        assert_eq!(w001[0].path, "detlint.toml");
    }
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    // detlint's analysis is single-threaded by construction; this locks
    // the contract that the rendered report never depends on the
    // worker-count knob the rest of the workspace honours.
    let files = [
        fixture("serve", "d006_serve"),
        fixture("tables", "d006_tables"),
        fixture("buffer", "d007_buffer"),
        fixture("clock", "d008_clock"),
    ];
    let config =
        cfg("[[hotpath]]\nroot = \"hotfix::serve::score_root\"\nrules = \"D006,D007,D008\"\n");
    let render = || {
        let report = check_sources(&files, &config);
        report
            .diagnostics
            .iter()
            .map(render_text)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let mut outputs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("SBE_THREADS", threads);
        outputs.push(render());
    }
    std::env::remove_var("SBE_THREADS");
    assert!(!outputs[0].is_empty(), "corpus must produce diagnostics");
    assert_eq!(outputs[0], outputs[1], "SBE_THREADS=1 vs 2 differ");
    assert_eq!(outputs[0], outputs[2], "SBE_THREADS=1 vs 8 differ");
}
