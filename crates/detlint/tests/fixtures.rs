//! Fixture-corpus self-tests: every `fail/` fixture must produce
//! *exactly* the diagnostics its `//~ D00X` markers declare (rule id and
//! line), and every `pass/` fixture must produce zero blocking
//! diagnostics. The fixtures are checked under a synthetic strict-profile
//! path so the corpus exercises every rule regardless of where the
//! fixture file physically lives.

use detlint::check_source;
use detlint::config::Config;

/// Synthetic path that selects the strict profile with every rule armed.
const STRICT_PATH: &str = "crates/core/src/fixture.rs";

fn load(kind: &str, name: &str) -> String {
    let path = format!("{}/fixtures/{kind}/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Parses `//~ D00X` markers: one expected (rule, line) per occurrence.
fn expected(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            let tail = rest[pos + 3..].trim_start();
            let rule: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            // Only `D` + three digits counts; prose like `D00X` in doc
            // comments is not a marker.
            if rule.len() == 4
                && rule.starts_with('D')
                && rule[1..].chars().all(|c| c.is_ascii_digit())
            {
                out.push((rule, (i + 1) as u32));
            }
            rest = &rest[pos + 3..];
        }
    }
    out.sort();
    out
}

fn blocking(src: &str) -> Vec<(String, u32)> {
    let cfg = Config::default();
    let mut got: Vec<(String, u32)> = check_source(STRICT_PATH, src, &cfg)
        .into_iter()
        .filter(|d| d.is_blocking())
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    got.sort();
    got
}

#[test]
fn fail_fixtures_flag_exactly_the_marked_lines() {
    for name in ["d001", "d002", "d003", "d004", "d005"] {
        let src = load("fail", name);
        let want = expected(&src);
        assert!(
            !want.is_empty(),
            "fail fixture {name} declares no //~ markers"
        );
        let got = blocking(&src);
        assert_eq!(got, want, "fixture fail/{name}.rs diagnostic mismatch");
    }
}

#[test]
fn mixed_line_endings_keep_diagnostics_line_accurate() {
    // The fixture interleaves CRLF and LF endings; every `//~ D004`
    // marker must still match its diagnostic's line exactly.
    let src = load("fail", "mixed_endings");
    assert!(src.contains("\r\n"), "fixture must carry CRLF endings");
    assert!(
        src.matches('\n').count() > src.matches("\r\n").count(),
        "fixture must also carry plain LF endings"
    );
    let want = expected(&src);
    assert_eq!(want.len(), 2, "fixture declares two markers");
    assert_eq!(blocking(&src), want, "mixed-endings diagnostic mismatch");
}

#[test]
fn pass_fixtures_are_clean() {
    for name in ["d001", "d002", "d003", "d004", "d005"] {
        let src = load("pass", name);
        let got = blocking(&src);
        assert!(
            got.is_empty(),
            "fixture pass/{name}.rs unexpectedly flagged: {got:?}"
        );
    }
}

#[test]
fn pass_fixture_waivers_are_recorded_not_blocking() {
    // pass/d001.rs contains two waived HashMap uses: the diagnostics must
    // exist (waived, with the written reason) but not block.
    let src = load("pass", "d001");
    let diags = check_source(STRICT_PATH, &src, &Config::default());
    let waived: Vec<_> = diags.iter().filter(|d| d.waived).collect();
    assert_eq!(waived.len(), 2, "expected both HashMap uses waived");
    for d in &waived {
        assert_eq!(d.rule, "D001");
        assert!(
            d.waive_reason
                .as_deref()
                .is_some_and(|r| r.contains("lookup-only interner")),
            "waiver must carry its written reason"
        );
    }
}
