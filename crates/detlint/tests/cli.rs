//! End-to-end acceptance test for the `detlint` binary: a scratch
//! workspace seeded with one violation of every rule must fail the check
//! with the right rule ids at the right `file:line` locations, and the
//! same tree exits clean once the violations are fixed or waived.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("detlint-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir scratch tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    dir
}

fn run(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("check")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn detlint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

/// One violation of each rule, on known lines.
const VIOLATIONS: &str = "\
use std::collections::HashMap;
pub fn all_five() -> u64 {
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    let n: u64 = \"7\".parse().unwrap();
    let s: f64 = parkit::par_map(parkit::Threads::Auto, &[1.0], |&x| x).iter().sum();
    n + t.elapsed().as_secs() + s as u64
}
";

#[test]
fn one_violation_per_rule_fails_with_correct_locations() {
    let root = scratch_root("fail");
    let file = root.join("crates/core/src/lib.rs");
    std::fs::write(&file, VIOLATIONS).expect("write violations");

    let (code, text) = run(&root, &[]);
    assert_eq!(code, 1, "expected exit 1, output:\n{text}");
    for (rule, line) in [
        ("D001", 1),
        ("D002", 3),
        ("D003", 4),
        ("D004", 5),
        ("D005", 6),
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
        let loc = format!("crates/core/src/lib.rs:{line}:");
        assert!(
            text.contains(&loc),
            "missing location {loc} for {rule} in:\n{text}"
        );
    }

    // JSON mode reports the same five rules and still fails.
    let (jcode, jtext) = run(&root, &["--format", "json"]);
    assert_eq!(jcode, 1);
    for rule in ["D001", "D002", "D003", "D004", "D005"] {
        assert!(jtext.contains(&format!("\"rule\":\"{rule}\"")));
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch_root("pass");
    std::fs::write(
        root.join("crates/core/src/lib.rs"),
        "use std::collections::BTreeMap;\n\
         pub fn ordered() -> BTreeMap<u32, u32> {\n    BTreeMap::new()\n}\n",
    )
    .expect("write clean source");

    let (code, text) = run(&root, &[]);
    assert_eq!(code, 0, "expected exit 0, output:\n{text}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_root_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!(
        "detlint-cli-{}-noroot/definitely-missing",
        std::process::id()
    ));
    let (code, _) = run(&dir, &[]);
    assert_eq!(code, 2);
}
