//! Locks the hand-emitted `--format json` output by round-tripping it
//! through the vendored `serde_json` parser: every field must survive,
//! including strings that need escaping.

use detlint::config::Config;
use detlint::diag::render_json;
use detlint::{check_source, Diagnostic, Severity};
use serde_json::Value;

#[test]
fn json_report_round_trips_through_serde_json() {
    let src = r#"
pub fn bad() -> u32 {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, std::time::Instant::now());
    "x".parse::<u32>().unwrap()
}
"#;
    let diags = check_source("crates/core/src/scratch.rs", src, &Config::default());
    assert!(!diags.is_empty());
    let text = render_json(&diags, 1);

    let v: Value = serde_json::from_str(&text).expect("detlint JSON must parse");
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));

    let arr = v
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("diagnostics array");
    assert_eq!(arr.len(), diags.len());
    for (d, j) in diags.iter().zip(arr) {
        assert_eq!(j.get("rule").and_then(Value::as_str), Some(d.rule));
        assert_eq!(j.get("path").and_then(Value::as_str), Some(d.path.as_str()));
        assert_eq!(
            j.get("line").and_then(Value::as_u64),
            Some(u64::from(d.line))
        );
        assert_eq!(j.get("col").and_then(Value::as_u64), Some(u64::from(d.col)));
        assert_eq!(
            j.get("message").and_then(Value::as_str),
            Some(d.message.as_str())
        );
        assert_eq!(j.get("waived").and_then(Value::as_bool), Some(d.waived));
    }

    let summary = v.get("summary").expect("summary object");
    assert_eq!(
        summary.get("files_scanned").and_then(Value::as_u64),
        Some(1)
    );
    let blocking = diags.iter().filter(|d| d.is_blocking()).count() as u64;
    assert_eq!(
        summary.get("errors").and_then(Value::as_u64),
        Some(blocking)
    );
}

#[test]
fn json_escaping_survives_hostile_strings() {
    let d = Diagnostic {
        rule: "D001",
        severity: Severity::Error,
        path: "crates/core/src/a \"b\"\\c.rs".to_string(),
        line: 3,
        col: 7,
        message: "tabs\tnewlines\nunicode \u{1F980} control \u{1} quote \"".to_string(),
        help: "back\\slash".to_string(),
        waived: true,
        waive_reason: Some("reason with \"quotes\"".to_string()),
    };
    let text = render_json(std::slice::from_ref(&d), 0);
    let v: Value = serde_json::from_str(&text).expect("escaped JSON must parse");
    let j = &v.get("diagnostics").and_then(Value::as_array).unwrap()[0];
    assert_eq!(j.get("path").and_then(Value::as_str), Some(d.path.as_str()));
    assert_eq!(
        j.get("message").and_then(Value::as_str),
        Some(d.message.as_str())
    );
    assert_eq!(j.get("help").and_then(Value::as_str), Some(d.help.as_str()));
    assert_eq!(
        j.get("waive_reason").and_then(Value::as_str),
        d.waive_reason.as_deref()
    );
}
