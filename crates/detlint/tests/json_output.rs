//! Locks the hand-emitted `--format json` output by round-tripping it
//! through the vendored `serde_json` parser: every field must survive,
//! including strings that need escaping.

use detlint::config::Config;
use detlint::diag::render_json;
use detlint::{check_source, Diagnostic, Severity};
use serde_json::Value;

#[test]
fn json_report_round_trips_through_serde_json() {
    let src = r#"
pub fn bad() -> u32 {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, std::time::Instant::now());
    "x".parse::<u32>().unwrap()
}
"#;
    let diags = check_source("crates/core/src/scratch.rs", src, &Config::default());
    assert!(!diags.is_empty());
    let text = render_json(&diags, 1);

    let v: Value = serde_json::from_str(&text).expect("detlint JSON must parse");
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));

    let arr = v
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("diagnostics array");
    assert_eq!(arr.len(), diags.len());
    for (d, j) in diags.iter().zip(arr) {
        assert_eq!(j.get("rule").and_then(Value::as_str), Some(d.rule));
        assert_eq!(j.get("path").and_then(Value::as_str), Some(d.path.as_str()));
        assert_eq!(
            j.get("line").and_then(Value::as_u64),
            Some(u64::from(d.line))
        );
        assert_eq!(j.get("col").and_then(Value::as_u64), Some(u64::from(d.col)));
        assert_eq!(
            j.get("end_line").and_then(Value::as_u64),
            Some(u64::from(d.end_line))
        );
        assert_eq!(
            j.get("message").and_then(Value::as_str),
            Some(d.message.as_str())
        );
        assert_eq!(j.get("waived").and_then(Value::as_bool), Some(d.waived));
    }

    let summary = v.get("summary").expect("summary object");
    assert_eq!(
        summary.get("files_scanned").and_then(Value::as_u64),
        Some(1)
    );
    let blocking = diags.iter().filter(|d| d.is_blocking()).count() as u64;
    assert_eq!(
        summary.get("errors").and_then(Value::as_u64),
        Some(blocking)
    );
}

#[test]
fn effects_json_round_trips_through_serde_json() {
    // The `detlint effects` artifact: call graph + per-function effect
    // bits. Built over the hotpath fixture corpus so the schema test
    // exercises assumed functions, resolved roots, and edges.
    let load = |module: &str, name: &str| {
        let path = format!("{}/fixtures/hotpath/{name}.rs", env!("CARGO_MANIFEST_DIR"));
        detlint::SourceFile {
            rel_path: format!("crates/hotfix/src/{module}.rs"),
            crate_name: "hotfix".to_string(),
            src: std::fs::read_to_string(&path).unwrap(),
        }
    };
    let files = [load("serve", "d006_serve"), load("tables", "d006_tables")];
    let cfg = detlint::config::parse(
        "[[hotpath]]\nroot = \"hotfix::serve::score_root\"\nrules = \"D006\"\n\n\
         [[assume]]\nfn = \"hotfix::tables::pick\"\nreason = \"schema fixture\"\n",
    )
    .unwrap();
    let (graph, analysis) = detlint::analyze_effects(&files, &cfg);
    let text = detlint::effects::render_effects_json(&graph, &analysis, &cfg);

    let v: Value = serde_json::from_str(&text).expect("effects JSON must parse");
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));

    let funcs = v
        .get("functions")
        .and_then(Value::as_array)
        .expect("functions array");
    assert_eq!(funcs.len(), 3, "score_root, lookup, pick");
    let by_qname = |q: &str| {
        funcs
            .iter()
            .find(|f| f.get("qname").and_then(Value::as_str) == Some(q))
            .unwrap_or_else(|| panic!("missing function {q}"))
    };
    let pick = by_qname("hotfix::tables::pick");
    assert_eq!(pick.get("assumed").and_then(Value::as_bool), Some(true));
    // Assumed functions are effect-free by definition.
    assert_eq!(pick.get("may_panic").and_then(Value::as_bool), Some(false));
    let lookup = by_qname("hotfix::serve::lookup");
    assert_eq!(
        lookup.get("calls").and_then(Value::as_array).map(Vec::len),
        Some(1),
        "lookup calls pick"
    );
    for f in funcs {
        for key in [
            "qname",
            "path",
            "line",
            "assumed",
            "may_panic",
            "may_alloc",
            "nondet",
        ] {
            assert!(f.get(key).is_some(), "function entry missing `{key}`");
        }
    }

    let roots = v.get("roots").and_then(Value::as_array).expect("roots");
    assert_eq!(roots.len(), 1);
    assert_eq!(
        roots[0].get("root").and_then(Value::as_str),
        Some("hotfix::serve::score_root")
    );
    assert_eq!(
        roots[0]
            .get("resolved")
            .and_then(Value::as_array)
            .map(Vec::len),
        Some(1),
        "root must resolve to exactly one function"
    );

    let summary = v.get("summary").expect("summary object");
    assert_eq!(summary.get("functions").and_then(Value::as_u64), Some(3));
    // score_root -> lookup -> pick.
    assert_eq!(summary.get("edges").and_then(Value::as_u64), Some(2));
}

#[test]
fn json_escaping_survives_hostile_strings() {
    let d = Diagnostic {
        rule: "D001",
        severity: Severity::Error,
        path: "crates/core/src/a \"b\"\\c.rs".to_string(),
        line: 3,
        col: 7,
        end_line: 5,
        message: "tabs\tnewlines\nunicode \u{1F980} control \u{1} quote \"".to_string(),
        help: "back\\slash".to_string(),
        waived: true,
        waive_reason: Some("reason with \"quotes\"".to_string()),
    };
    let text = render_json(std::slice::from_ref(&d), 0);
    let v: Value = serde_json::from_str(&text).expect("escaped JSON must parse");
    let j = &v.get("diagnostics").and_then(Value::as_array).unwrap()[0];
    assert_eq!(j.get("path").and_then(Value::as_str), Some(d.path.as_str()));
    assert_eq!(
        j.get("message").and_then(Value::as_str),
        Some(d.message.as_str())
    );
    assert_eq!(j.get("help").and_then(Value::as_str), Some(d.help.as_str()));
    assert_eq!(
        j.get("waive_reason").and_then(Value::as_str),
        d.waive_reason.as_deref()
    );
}
