//! D002 pass fixture: time *types* are fine; only clock reads are not.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

use std::time::Duration;
use std::time::Instant;

/// Holding an `Instant` handed in by a caller (e.g. the bench crate)
/// is allowed — the library never reads the clock itself.
pub struct Deadline {
    pub at: Instant,
    pub grace: Duration,
}

pub fn grace_of(d: &Deadline) -> Duration {
    d.grace
}
