//! D005 pass fixture: per-item reductions inside the mapped closure are
//! fine; cross-item reductions use the fixed-order parkit helpers.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

pub fn row_sums(rows: &[Vec<f64>]) -> Vec<f64> {
    // `.sum()` here is *inside* the closure — one row at a time, no
    // cross-item accumulation — and must not be flagged.
    parkit::par_map(parkit::Threads::Auto, rows, |row| row.iter().sum::<f64>())
}

pub fn total(rows: &[Vec<f64>]) -> f64 {
    let partials = parkit::par_map(parkit::Threads::Auto, rows, |row| {
        row.iter().sum::<f64>()
    });
    parkit::sum_in_order(&partials)
}

pub fn product(xs: &[f64]) -> f64 {
    let doubled = parkit::par_map(parkit::Threads::Auto, xs, |&x| x * 2.0);
    parkit::fold_in_order(&doubled, 1.0, |acc, &v| acc * v)
}
