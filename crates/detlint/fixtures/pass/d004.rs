//! D004 pass fixture: fallible library code; panics confined to tests.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

pub fn read_config(path: &str) -> Result<u32, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    text.trim().parse::<u32>().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_number() {
        // `unwrap`/`expect`/`panic!` are all fine inside test regions.
        let v = "42".trim().parse::<u32>().unwrap();
        assert_eq!(v, 42);
        let w = "7".parse::<u32>().expect("literal parses");
        if w != 7 {
            panic!("arithmetic broke");
        }
    }
}

/// Regression: a multi-line `.expect(\n"…")` spans to its closing
/// paren, so a trailing waiver on *any* spanned line covers it.
pub fn embedded_default() -> u32 {
    "42".parse::<u32>()
        .expect(
            "literal is a valid u32",
        ) // detlint: allow(D004) reason=constant literal parses by construction
}
