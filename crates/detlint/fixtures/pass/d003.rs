//! D003 pass fixture: seeded, stream-split randomness.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

use rand::SeedableRng;

pub fn seeded_stream(seed: u64) -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::seed_from_u64(seed)
}

pub fn derived(seed: u64, substream: u64) -> rand::rngs::SmallRng {
    // Deterministic stream derivation in the titan_sim::rng style.
    rand::rngs::SmallRng::seed_from_u64(seed ^ substream.wrapping_mul(0x9E37_79B9))
}
