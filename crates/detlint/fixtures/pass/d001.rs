//! D001 pass fixture: ordered collections, plus one reasoned waiver.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile) — must
//! produce zero blocking diagnostics.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn histogram(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn distinct(xs: &[u32]) -> usize {
    let seen: BTreeSet<u32> = xs.iter().copied().collect();
    seen.len()
}

// A hash map whose contents never iterate into output may be waived —
// with a written reason.
// detlint: allow(D001) reason=lookup-only interner; iteration order never observed
pub fn interner() -> std::collections::HashMap<&'static str, u32> {
    std::collections::HashMap::new() // detlint: allow(D001) reason=lookup-only interner; iteration order never observed
}
