//! D006 fixture, site side: the slice indexing the root reaches.

pub fn pick(xs: &[f32], i: usize) -> f32 {
    xs[i]
}
