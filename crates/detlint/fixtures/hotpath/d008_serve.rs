//! D008 fixture, root side: a nondeterminism source (thread-count read)
//! flows into the hot root from another file (see `d008_clock.rs`).

/// Declared as a `[[hotpath]]` root by the self-test's config.
pub fn serve_root(xs: &[f32]) -> f32 {
    let lanes = clock::lane_count();
    xs.iter().take(lanes).sum()
}
