//! D007 fixture, site side: the allocation the root reaches.

pub fn push_all(out: &mut Vec<f32>, xs: &[f32]) {
    for &v in xs {
        out.push(v);
    }
}
