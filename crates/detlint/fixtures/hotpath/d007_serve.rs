//! D007 fixture, root side: the hot root reaches a `Vec::push`
//! allocation site in another file (see `d007_buffer.rs`).

/// Declared as a `[[hotpath]]` root by the self-test's config.
pub fn assemble_root(out: &mut Vec<f32>, xs: &[f32]) {
    buffer::push_all(out, xs);
}
