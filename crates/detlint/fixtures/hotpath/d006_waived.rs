//! D006 fixture, waived: same reach as `d006_serve.rs`, but the site
//! carries a written invariant waiver — the diagnostic must record the
//! reason and stop blocking.

pub fn score_root(xs: &[f32], i: usize) -> f32 {
    pick(xs, i)
}

fn pick(xs: &[f32], i: usize) -> f32 {
    // detlint: allow(D006) reason=caller clamps the index to xs.len()-1
    xs[i]
}
