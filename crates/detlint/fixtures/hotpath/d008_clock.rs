//! D008 fixture, site side: the nondeterminism source the root reads.

pub fn lane_count() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}
