//! D007 fixture, waived: same reach as `d007_serve.rs`, but the site
//! carries a warmup-only growth waiver.

pub fn assemble_root(out: &mut Vec<f32>, xs: &[f32]) {
    push_all(out, xs);
}

fn push_all(out: &mut Vec<f32>, xs: &[f32]) {
    for &v in xs {
        // detlint: allow(D007) reason=buffer is pre-sized by the caller; capacity reused after warmup
        out.push(v);
    }
}
