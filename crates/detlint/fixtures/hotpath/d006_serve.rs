//! D006 fixture, root side: the hot root reaches a slice-indexing panic
//! site two calls away, across a file boundary (see `d006_tables.rs`).

/// Declared as a `[[hotpath]]` root by the self-test's config.
pub fn score_root(xs: &[f32], i: usize) -> f32 {
    lookup(xs, i)
}

fn lookup(xs: &[f32], i: usize) -> f32 {
    tables::pick(xs, i) + 1.0
}
