//! D008 fixture, waived: same reach as `d008_serve.rs`, but the source
//! carries a thread-count-invariance waiver.

pub fn serve_root(xs: &[f32]) -> f32 {
    let lanes = lane_count();
    xs.iter().take(lanes).sum()
}

fn lane_count() -> usize {
    // detlint: allow(D008) reason=thread-count selection only; merge order is fixed
    std::thread::available_parallelism().map_or(1, usize::from)
}
