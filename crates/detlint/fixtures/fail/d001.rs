//! D001 fail fixture: hash collections in a determinism-policed crate.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).
//! `//~ D00X` marks each line the self-test expects a diagnostic on.

use std::collections::HashMap; //~ D001
use std::collections::HashSet; //~ D001

pub fn word_ids(words: &[&str]) -> Vec<usize> {
    let mut ids = HashMap::new(); //~ D001
    for &w in words {
        let next = ids.len();
        ids.entry(w).or_insert(next);
    }
    words.iter().map(|w| ids[w]).collect()
}

pub fn distinct(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect(); //~ D001
    seen.len()
}
