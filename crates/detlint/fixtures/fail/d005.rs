//! D005 fail fixture: float reductions chained onto parallel-map results.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).
//!
//! Iterator `.sum()`/`.fold()` over a `par_map` result accumulates in an
//! order the reader cannot see pinned; use `parkit::sum_in_order` /
//! `parkit::fold_in_order` instead.

pub fn total_energy(items: &[f64]) -> f64 {
    let joules: f64 = parkit::par_map(parkit::Threads::Auto, items, |&x| x * 3.6)
        .iter()
        .sum(); //~ D005
    joules
}

pub fn weighted(items: &[f64]) -> f64 {
    parkit::par_map_indexed(parkit::Threads::Auto, items, |i, &x| x * i as f64)
        .iter()
        .fold(0.0, |acc, v| acc + v) //~ D005
}
