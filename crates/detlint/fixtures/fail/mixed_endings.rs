//! Mixed LF/CRLF fixture: diagnostics must stay line-accurate on
//! foreign checkouts that rewrite some line endings.
pub fn windows_checkout(path: &str) -> u32 {
    let text = std::fs::read_to_string(path).unwrap(); //~ D004
    text.trim().parse::<u32>().expect("a number") //~ D004
}
