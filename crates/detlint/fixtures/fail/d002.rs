//! D002 fail fixture: wall-clock reads outside `crates/bench`.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

pub fn stamp_run() -> (u64, u64) {
    let t0 = std::time::Instant::now(); //~ D002
    let wall = std::time::SystemTime::now() //~ D002
        .duration_since(std::time::UNIX_EPOCH) //~ D002
        .map(|d| d.as_secs())
        .unwrap_or_default();
    (t0.elapsed().as_millis() as u64, wall)
}
