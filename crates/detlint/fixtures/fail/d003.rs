//! D003 fail fixture: unseeded entropy sources.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

pub fn roll_dice() -> u8 {
    let mut rng = rand::thread_rng(); //~ D003
    rng.gen_range(1..=6)
}

pub fn fresh_stream() -> SmallRng {
    SmallRng::from_entropy() //~ D003
}

pub fn os_bytes() -> [u8; 8] {
    let mut buf = [0u8; 8];
    OsRng.fill_bytes(&mut buf); //~ D003
    buf
}

pub fn device_bytes() -> Vec<u8> {
    std::fs::read("/dev/urandom").unwrap_or_default() //~ D003
}
