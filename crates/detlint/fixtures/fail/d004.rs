//! D004 fail fixture: panicking escape hatches in library non-test code.
//! Checked as if at `crates/core/src/fixture.rs` (strict profile).

pub fn read_config(path: &str) -> u32 {
    let text = std::fs::read_to_string(path).unwrap(); //~ D004
    let value = text.trim().parse::<u32>().expect("config is a number"); //~ D004
    if value > 1_000 {
        panic!("config value out of range"); //~ D004
    }
    value
}

/// Regression: the rule operates on the token stream, so a call whose
/// argument list rustfmt split across lines is still one call.
pub fn read_port(path: &str) -> u16 {
    std::fs::read_to_string(path)
        .expect( //~ D004
            "config file must exist",
        )
        .trim()
        .parse::<u16>()
        .unwrap() //~ D004
}
