//! Workspace call graph over the extracted function items.
//!
//! Call sites are recognized purely from the token stream: `path::to::fn(`
//! and `.method(` (turbofish tolerated). Resolution is name-based:
//!
//! - a method call resolves to *every* workspace function with that name
//!   (receiver types are unknown — over-approximation in the safe
//!   direction for reachability analyses);
//! - a path call resolves by qname-suffix match, with leading
//!   `crate`/`self`/`super` segments dropped and `Self` matching any one
//!   segment;
//! - an unresolved call falls through to the builtin effect tables in
//!   `effects.rs`, or is assumed effect-free (std calls like `f64::max`).
//!
//! Test-region functions are excluded from the graph entirely.

use crate::items::FnItem;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// A single call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub target: Callee,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
}

/// The syntactic shape of a call target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::c(...)` — path segments in order (leading `crate`/`self`/
    /// `super` already dropped).
    Path(Vec<String>),
    /// `.name(...)` — a method call on an unknown receiver.
    Method(String),
}

impl Callee {
    /// The bare function name being invoked.
    pub fn name(&self) -> &str {
        match self {
            Callee::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
            Callee::Method(m) => m,
        }
    }

    /// Human-readable form for diagnostics.
    pub fn display(&self) -> String {
        match self {
            Callee::Path(segs) => segs.join("::"),
            Callee::Method(m) => format!(".{m}()"),
        }
    }
}

/// One node of the call graph: an item plus its outgoing call sites.
#[derive(Debug)]
pub struct Node {
    /// The function this node represents.
    pub item: FnItem,
    /// Index of the defining file in the caller's file list (the body
    /// token range indexes into that file's code tokens).
    pub file: usize,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Resolved callee node indices, deduplicated and sorted.
    pub edges: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Nodes in (file, line) order — the extraction order over the
    /// sorted file list, so the graph is deterministic.
    pub nodes: Vec<Node>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Graph {
    /// Builds the graph from per-file item lists; `fn_lists[k]` holds
    /// items whose body ranges index into `codes[k]`.
    pub fn build(fn_lists: Vec<Vec<FnItem>>, codes: &[Vec<Tok>]) -> Graph {
        let mut g = Graph::default();
        for (file, fns) in fn_lists.into_iter().enumerate() {
            for item in fns {
                if item.is_test {
                    continue;
                }
                let calls = call_sites(&codes[file], item.body);
                let idx = g.nodes.len();
                g.by_name.entry(item.name.clone()).or_default().push(idx);
                g.nodes.push(Node {
                    item,
                    file,
                    calls,
                    edges: Vec::new(),
                });
            }
        }
        for i in 0..g.nodes.len() {
            let mut edges: Vec<usize> = g.nodes[i]
                .calls
                .iter()
                .flat_map(|c| g.resolve(&c.target))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            g.nodes[i].edges = edges;
        }
        g
    }

    /// Node indices a callee may refer to (possibly empty).
    pub fn resolve(&self, callee: &Callee) -> Vec<usize> {
        match callee {
            Callee::Method(m) => self.by_name.get(m).cloned().unwrap_or_default(),
            Callee::Path(segs) => {
                if segs.len() == 1 {
                    return self.by_name.get(&segs[0]).cloned().unwrap_or_default();
                }
                let candidates = match self.by_name.get(segs[segs.len() - 1].as_str()) {
                    Some(c) => c,
                    None if segs.last().is_some_and(|s| s == "Self") => return Vec::new(),
                    None => return Vec::new(),
                };
                candidates
                    .iter()
                    .copied()
                    .filter(|&i| qname_suffix_matches(&self.nodes[i].item.qname, segs))
                    .collect()
            }
        }
    }

    /// Resolves a fully/partially qualified function name from config
    /// (`detlint.toml` hotpath roots and assume entries).
    pub fn resolve_qname(&self, qname: &str) -> Vec<usize> {
        let segs: Vec<String> = qname.split("::").map(str::to_string).collect();
        if segs.len() == 1 {
            return self.by_name.get(&segs[0]).cloned().unwrap_or_default();
        }
        self.resolve(&Callee::Path(segs))
    }
}

/// Whether `qname` (e.g. `streamd::serve::flush`) ends with the call
/// path `segs`, treating a `Self` segment as a single-segment wildcard.
fn qname_suffix_matches(qname: &str, segs: &[String]) -> bool {
    let qsegs: Vec<&str> = qname.split("::").collect();
    if segs.len() > qsegs.len() {
        return false;
    }
    let tail = &qsegs[qsegs.len() - segs.len()..];
    tail.iter()
        .zip(segs)
        .all(|(q, s)| s == "Self" || *q == s.as_str())
}

/// Keywords that look like idents but never name a callable.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "as"
            | "in"
            | "let"
            | "move"
            | "ref"
            | "mut"
            | "unsafe"
            | "await"
            | "dyn"
            | "impl"
            | "fn"
            | "pub"
            | "where"
            | "use"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "enum"
            | "struct"
            | "trait"
            | "true"
            | "false"
            | "box"
            | "yield"
    )
}

/// Extracts the call sites inside a body token range (`{` ..= `}`),
/// indices into the code-token slice.
pub fn call_sites(code: &[Tok], body: (usize, usize)) -> Vec<CallSite> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut i = open;
    while i <= close && i < code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Nested `fn` names and attribute heads (`#[cfg(...)]`) are not
        // call sites even though an open paren follows.
        let in_attr_head = i >= 2 && code[i - 1].is_punct('[') && code[i - 2].is_punct('#');
        if in_attr_head || (i > 0 && code[i - 1].is_ident("fn")) {
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].is_punct('.');
        let prev_colon = i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':');
        if prev_dot {
            // `.name(` or `.name::<T>(`
            if let Some(after) = skip_turbofish(code, i + 1, close) {
                if code.get(after).is_some_and(|t| t.is_punct('(')) {
                    out.push(CallSite {
                        target: Callee::Method(t.text.clone()),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            i += 1;
            continue;
        }
        if prev_colon {
            // Interior of a path already handled at its head.
            i += 1;
            continue;
        }
        // Path head: collect `seg(::seg)*`.
        let mut segs = vec![t.text.clone()];
        let mut j = i + 1;
        while j < close
            && code[j].is_punct(':')
            && code.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && code
                .get(j + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        {
            segs.push(code[j + 2].text.clone());
            j += 3;
        }
        if let Some(after) = skip_turbofish(code, j, close) {
            if code.get(after).is_some_and(|t| t.is_punct('(')) {
                // Macro invocations (`name!(`) are not calls; the bang
                // sits between the ident and the paren, so this arm
                // never sees them. Drop leading path qualifiers.
                while segs
                    .first()
                    .is_some_and(|s| matches!(s.as_str(), "crate" | "self" | "super"))
                {
                    segs.remove(0);
                }
                if !segs.is_empty() {
                    out.push(CallSite {
                        target: Callee::Path(segs),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Skips a `::<...>` turbofish starting at `i`; returns the index of the
/// first token after it (or `i` unchanged when there is none). `None`
/// when the angle brackets never close inside the body.
fn skip_turbofish(code: &[Tok], i: usize, close: usize) -> Option<usize> {
    if !(code.get(i).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct('<')))
    {
        return Some(i);
    }
    let mut depth = 0i32;
    let mut k = i + 2;
    while k <= close {
        if code[k].is_punct('<') {
            depth += 1;
        } else if code[k].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> Graph {
        let code: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let fns = items::extract("crates/x/src/lib.rs", "x", &code);
        Graph::build(vec![fns], std::slice::from_ref(&code))
    }

    #[test]
    fn direct_and_method_calls_resolve() {
        let g = graph_of(
            "fn leaf() {}\n\
             struct S;\n\
             impl S { fn step(&self) { leaf(); } }\n\
             fn root(s: &S) { s.step(); crate::leaf(); }",
        );
        let idx = |q: &str| {
            g.nodes
                .iter()
                .position(|n| n.item.qname.ends_with(q))
                .unwrap()
        };
        let (leaf, step, root) = (idx("::leaf"), idx("S::step"), idx("::root"));
        assert_eq!(g.nodes[step].edges, vec![leaf]);
        assert_eq!(g.nodes[root].edges, vec![leaf, step]);
    }

    #[test]
    fn qualified_paths_match_by_suffix() {
        let g = graph_of(
            "mod deep { pub fn only() {} }\n\
             fn a() { deep::only(); }\n\
             fn b() { x::deep::only(); }\n\
             fn c() { other::only(); }",
        );
        let only = g
            .nodes
            .iter()
            .position(|n| n.item.qname == "x::deep::only")
            .unwrap();
        let edges = |q: &str| {
            &g.nodes
                .iter()
                .find(|n| n.item.qname.ends_with(q))
                .unwrap()
                .edges
        };
        assert_eq!(edges("::a"), &vec![only]);
        assert_eq!(edges("::b"), &vec![only]);
        assert!(edges("::c").is_empty(), "wrong module must not match");
    }

    #[test]
    fn turbofish_and_macros_are_handled() {
        let g = graph_of(
            "fn parse_it(s: &str) -> u32 { s.parse::<u32>().unwrap_or(0) }\n\
             fn log(s: &str) { println!(\"{s}\"); }",
        );
        let parse_calls: Vec<String> = g.nodes[0]
            .calls
            .iter()
            .map(|c| c.target.name().to_string())
            .collect();
        assert_eq!(parse_calls, vec!["parse", "unwrap_or"]);
        assert!(
            g.nodes[1].calls.is_empty(),
            "macro invocation is not a call site"
        );
    }

    #[test]
    fn self_segment_is_a_wildcard() {
        let g = graph_of(
            "struct S;\n\
             impl S { fn new() -> S { S } fn mk() -> S { Self::new() } }",
        );
        let new = g
            .nodes
            .iter()
            .position(|n| n.item.qname == "x::S::new")
            .unwrap();
        let mk = g.nodes.iter().find(|n| n.item.qname == "x::S::mk").unwrap();
        assert_eq!(mk.edges, vec![new]);
    }

    #[test]
    fn test_functions_stay_out_of_the_graph() {
        let g = graph_of(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests { fn helper() { super::prod(); } }",
        );
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].item.qname, "x::prod");
    }

    #[test]
    fn config_qnames_resolve_functions() {
        let g = graph_of("mod m { pub fn target() {} }\nfn other() {}");
        assert_eq!(g.resolve_qname("x::m::target").len(), 1);
        assert_eq!(g.resolve_qname("m::target").len(), 1);
        assert_eq!(g.resolve_qname("target").len(), 1);
        assert!(g.resolve_qname("y::target").is_empty());
    }
}
