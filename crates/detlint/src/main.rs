//! CLI driver: `detlint check [--root DIR] [--format text|json]
//! [--config FILE]`, `detlint effects` (call-graph + effect-lattice
//! JSON artifact), and `detlint rules`.
//!
//! Exit codes: `0` clean (waived diagnostics and warnings are fine),
//! `1` at least one non-waived error, `2` usage/config/IO failure.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{config, diag, RULES};

enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
}

fn usage() -> &'static str {
    "usage: detlint <check|effects|rules> [--root DIR] [--config FILE] [--format text|json]\n\
     \n\
     check    lint all workspace sources against rules D001-D008\n\
     effects  emit the interprocedural call graph + effect summaries as JSON\n\
     rules    list the rules and what they enforce"
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let Some(cmd) = argv.next() else {
        return Err(usage().to_string());
    };
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        format: Format::Text,
    };
    while let Some(flag) = argv.next() {
        let mut value_of = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value_of("--root")?),
            "--config" => args.config = Some(PathBuf::from(value_of("--config")?)),
            "--format" => {
                args.format = match value_of("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok((cmd, args))
}

fn load_config(args: &Args) -> Result<config::Config, String> {
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("detlint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
        config::parse(&text).map_err(|e| e.to_string())?
    } else {
        config::Config::default()
    };
    if !args.root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml); pass --root",
            args.root.display()
        ));
    }
    Ok(cfg)
}

fn run_effects(args: &Args) -> Result<ExitCode, String> {
    let cfg = load_config(args)?;
    let json = detlint::effects_workspace(&args.root, &cfg)?;
    print!("{json}");
    Ok(ExitCode::SUCCESS)
}

fn run_check(args: &Args) -> Result<ExitCode, String> {
    let cfg = load_config(args)?;
    let report = detlint::check_workspace(&args.root, &cfg)?;
    match args.format {
        Format::Json => println!(
            "{}",
            diag::render_json(&report.diagnostics, report.files_scanned)
        ),
        Format::Text => {
            for d in &report.diagnostics {
                if d.waived {
                    continue;
                }
                print!("{}", diag::render_text(d));
            }
            let blocking = report.blocking();
            let waived = report.diagnostics.iter().filter(|d| d.waived).count();
            let by_rule = detlint::rules::count_by_rule(&report.diagnostics);
            let breakdown: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}:{n}")).collect();
            println!(
                "detlint: {} files scanned, {} error(s){}, {} waived",
                report.files_scanned,
                blocking,
                if breakdown.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", breakdown.join(" "))
                },
                waived,
            );
        }
    }
    Ok(if report.blocking() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn run_rules_listing() {
    println!("detlint rules:");
    for r in &RULES {
        println!("  {}  {}", r.id, r.summary);
        println!("        fix: {}", r.help);
    }
    println!(
        "\nwaivers: `// detlint: allow(D00X) reason=...` inline, or `[[allow]]` entries\n\
         (rule/path/reason, optional line) in detlint.toml; reasons are mandatory."
    );
}

fn main() -> ExitCode {
    let (cmd, args) = match parse_args(std::env::args()) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "check" => match run_check(&args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("detlint: {msg}");
                ExitCode::from(2)
            }
        },
        "effects" => match run_effects(&args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("detlint: {msg}");
                ExitCode::from(2)
            }
        },
        "rules" => {
            run_rules_listing();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::from(2)
        }
    }
}
