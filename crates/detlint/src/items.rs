//! Function-item extraction: the module-aware symbol table the
//! interprocedural pass (D006–D008) is built on.
//!
//! The extractor walks one file's code-token stream tracking the scope
//! stack — inline `mod` blocks, `impl` blocks (whose self type becomes a
//! path segment), and `trait` blocks — and records every `fn` item with
//! its fully qualified name (`crate::module::Type::name`), source
//! position, and body token range. The file's own module path is derived
//! from its workspace-relative path (`crates/streamd/src/serve.rs` →
//! `streamd::serve`), with `lib.rs` / `main.rs` / `mod.rs` mapping to
//! their parent module.
//!
//! Precision notes (see DESIGN.md §13): nested `fn` items are *not*
//! split out of their parent's body — their intrinsic effects attribute
//! to the enclosing item, which over-approximates in the safe direction.
//! Functions inside `#[cfg(test)]` / `#[test]` regions are marked and
//! excluded from the call graph entirely.

use crate::lexer::Tok;
use crate::rules;

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Fully qualified name, e.g. `mlkit::fastpath::CompiledGbdt::predict_proba_into`.
    pub qname: String,
    /// The bare function name (last `qname` segment).
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Code-token index range of the body, `{` to `}` inclusive.
    pub body: (usize, usize),
    /// Whether the item sits inside a test region (`#[cfg(test)]` or
    /// `#[test]`); test items stay out of the call graph.
    pub is_test: bool,
}

/// Maps a workspace-relative file path to its module path segments
/// (starting with the normalized crate name).
pub fn module_path(rel_path: &str, crate_name: &str) -> Vec<String> {
    let mut segs = vec![crate_name.replace('-', "_")];
    let p = rel_path.strip_suffix(".rs").unwrap_or(rel_path);
    let tail = if let Some(idx) = p.find("/src/") {
        &p[idx + 5..]
    } else if let Some(s) = p.strip_prefix("src/") {
        s
    } else {
        p
    };
    for part in tail.split('/') {
        if matches!(part, "lib" | "main" | "mod" | "") {
            continue;
        }
        segs.push(part.to_string());
    }
    segs
}

/// Extracts every `fn` item of one file.
pub fn extract(rel_path: &str, crate_name: &str, code: &[Tok]) -> Vec<FnItem> {
    let test_regions = rules::test_regions(code);
    let in_test = |idx: usize| test_regions.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut scope = module_path(rel_path, crate_name);
    let mut out = Vec::new();
    scan(
        rel_path,
        code,
        0,
        code.len(),
        &mut scope,
        &in_test,
        &mut out,
    );
    out
}

/// Recursive scope walker over `code[i0..end)`.
fn scan(
    path: &str,
    code: &[Tok],
    i0: usize,
    end: usize,
    scope: &mut Vec<String>,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<FnItem>,
) {
    let mut i = i0;
    while i < end {
        let t = &code[i];
        if t.is_ident("mod") && code.get(i + 1).is_some_and(is_name) {
            if code.get(i + 2).is_some_and(|n| n.is_punct('{')) {
                let close = matching_brace_bounded(code, i + 2, end);
                scope.push(code[i + 1].text.clone());
                scan(path, code, i + 3, close, scope, in_test, out);
                scope.pop();
                i = close + 1;
                continue;
            }
            // `mod name;` — out-of-line module, nothing to do here.
            i += 2;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let Some((type_name, open)) = scan_impl_header(code, i, end) else {
                i += 1;
                continue;
            };
            let close = matching_brace_bounded(code, open, end);
            scope.push(type_name);
            scan(path, code, open + 1, close, scope, in_test, out);
            scope.pop();
            i = close + 1;
            continue;
        }
        if t.is_ident("fn") && code.get(i + 1).is_some_and(is_name) {
            let name = code[i + 1]
                .text
                .strip_prefix("r#")
                .unwrap_or(&code[i + 1].text)
                .to_string();
            // Walk the signature for the body `{` (or a `;` for a
            // bodyless trait-method declaration).
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut body = None;
            while j < end {
                let s = &code[j];
                if s.is_punct('(') {
                    paren += 1;
                } else if s.is_punct(')') {
                    paren -= 1;
                } else if s.is_punct('[') {
                    bracket += 1;
                } else if s.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 {
                    if s.is_punct(';') {
                        break;
                    }
                    if s.is_punct('{') {
                        body = Some(j);
                        break;
                    }
                }
                j += 1;
            }
            let Some(open) = body else {
                i = j + 1;
                continue;
            };
            let close = matching_brace_bounded(code, open, end);
            let mut qname = scope.join("::");
            qname.push_str("::");
            qname.push_str(&name);
            out.push(FnItem {
                qname,
                name,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                body: (open, close),
                is_test: in_test(i),
            });
            // Do not descend: nested fns attribute to this item.
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

fn is_name(t: &Tok) -> bool {
    t.kind == crate::lexer::TokKind::Ident
        && !matches!(
            t.text.as_str(),
            "fn" | "mod" | "impl" | "trait" | "for" | "where" | "pub"
        )
}

/// Parses an `impl`/`trait` header starting at `i`: returns the scope
/// segment (self-type or trait name) and the index of the body `{`.
fn scan_impl_header(code: &[Tok], i: usize, end: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameters `<...>` (lexer emits `<`/`>` as single
    // puncts, so nested closes are individually balanced).
    if code.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while j < end {
            if code[j].is_punct('<') {
                depth += 1;
            } else if code[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect the path up to `for` / `where` / `{`; on `for`, restart —
    // the self type is what follows.
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while j < end {
        let t = &code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_ident("for") {
                last_ident = None;
            } else if t.is_ident("where") {
                // Skip ahead to the body brace.
                while j < end && !code[j].is_punct('{') {
                    j += 1;
                }
                return last_ident.map(|n| (n, j));
            } else if t.is_punct('{') {
                return last_ident.map(|n| (n, j));
            } else if t.kind == crate::lexer::TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe")
            {
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// `rules::matching_brace`, but clamped to a scope bound.
fn matching_brace_bounded(code: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        if code[k].is_punct('{') {
            depth += 1;
        } else if code[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(path: &str, src: &str) -> Vec<FnItem> {
        let code: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        extract(path, "mycrate", &code)
    }

    #[test]
    fn file_path_maps_to_module_path() {
        assert_eq!(
            module_path("crates/streamd/src/serve.rs", "streamd"),
            vec!["streamd", "serve"]
        );
        assert_eq!(
            module_path("src/lib.rs", "gpu-error-prediction"),
            vec!["gpu_error_prediction"]
        );
        assert_eq!(
            module_path("crates/core/src/a/mod.rs", "sbepred"),
            vec!["sbepred", "a"]
        );
    }

    #[test]
    fn free_fns_and_methods_get_qualified_names() {
        let fns = items(
            "crates/x/src/m.rs",
            "pub fn free() {}\n\
             struct Foo;\n\
             impl Foo { fn method(&self) {} }\n\
             impl std::fmt::Display for Foo {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, \"\") }\n\
             }",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "mycrate::m::free",
                "mycrate::m::Foo::method",
                "mycrate::m::Foo::fmt"
            ]
        );
    }

    #[test]
    fn inline_mods_nest_and_test_items_are_marked() {
        let fns = items(
            "crates/x/src/lib.rs",
            "mod inner { pub fn deep() {} }\n\
             #[cfg(test)]\nmod tests { fn helper() {} }\n\
             fn outer() {}",
        );
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].qname, "mycrate::inner::deep");
        assert!(!fns[0].is_test);
        assert_eq!(fns[1].qname, "mycrate::tests::helper");
        assert!(fns[1].is_test);
        assert_eq!(fns[2].qname, "mycrate::outer");
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped_but_defaults_kept() {
        let fns = items(
            "crates/x/src/lib.rs",
            "trait Sink {\n\
                 fn emit(&mut self, v: u32) -> Result<(), ()>;\n\
                 fn emit_twice(&mut self, v: u32) { let _ = v; }\n\
             }",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qname, "mycrate::Sink::emit_twice");
    }

    #[test]
    fn generic_impl_headers_resolve_their_self_type() {
        let fns = items(
            "crates/x/src/lib.rs",
            "impl<'a, T: Clone> Holder<'a, T> { fn get(&self) -> &T { &self.0 } }\n\
             impl Iterator for Stream { fn next(&mut self) -> Option<u8> { None } }",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, vec!["mycrate::Holder::get", "mycrate::Stream::next"]);
    }

    #[test]
    fn body_ranges_cover_the_braces() {
        let src = "fn f() { g(); }";
        let code: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let fns = extract("crates/x/src/lib.rs", "x", &code);
        assert_eq!(fns.len(), 1);
        let (open, close) = fns[0].body;
        assert!(code[open].is_punct('{'));
        assert!(code[close].is_punct('}'));
    }
}
