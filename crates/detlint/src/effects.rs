//! Interprocedural effect analysis: proves declared hot-path roots
//! panic-free (D006), alloc-free (D007), and deterministic (D008).
//!
//! Three layers:
//!
//! 1. **Intrinsic scan** — per function body, token-level detection of
//!    effect *sites*: implicit panics (slice indexing, unwrap-family,
//!    integer division, `assert!`), allocations (`Vec::push`, `collect`,
//!    `format!`, …), and nondeterminism sources (entropy, clocks,
//!    thread ids, pointer-as-int).
//! 2. **Fixpoint** — a worklist pass over the call graph propagates a
//!    three-bit effect lattice (`MayPanic`/`MayAlloc`/`NondetSource`)
//!    from callees to callers until stable; this is what `detlint
//!    effects` exports as JSON.
//! 3. **Root reachability** — for each `[[hotpath]]` root in
//!    `detlint.toml`, a BFS over call edges finds every reachable
//!    intrinsic site of the armed kinds and emits one diagnostic per
//!    `(rule, site)`, anchored at the *site* (so inline waivers at the
//!    site discharge the obligation for every root at once), with the
//!    full root→site call chain in the message.
//!
//! `[[assume]]` entries cut the graph: an assumed function is treated as
//! effect-free and never traversed — the reason is the audit trail.
//! Known over-approximations are documented in DESIGN.md §13.

use crate::callgraph::{Callee, Graph};
use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// The three effect kinds of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// May abort the process (rule D006).
    Panic,
    /// May allocate on the steady-state path (rule D007).
    Alloc,
    /// Reads a nondeterminism source (rule D008).
    Nondet,
}

impl EffectKind {
    /// The rule id enforcing this effect on hot paths.
    pub fn rule(self) -> &'static str {
        match self {
            EffectKind::Panic => "D006",
            EffectKind::Alloc => "D007",
            EffectKind::Nondet => "D008",
        }
    }

    fn verb(self) -> &'static str {
        match self {
            EffectKind::Panic => "panic",
            EffectKind::Alloc => "allocate",
            EffectKind::Nondet => "read a nondeterminism source",
        }
    }

    fn bit(self) -> u8 {
        match self {
            EffectKind::Panic => 1,
            EffectKind::Alloc => 2,
            EffectKind::Nondet => 4,
        }
    }
}

/// One intrinsic effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Which effect the site exhibits.
    pub kind: EffectKind,
    /// What the site is, e.g. "slice indexing `xs[..]`".
    pub desc: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

/// Per-function summary after the fixpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnEffects {
    /// Bitmask of `EffectKind::bit` values.
    pub mask: u8,
}

impl FnEffects {
    /// Whether the function may exhibit `kind`.
    pub fn has(self, kind: EffectKind) -> bool {
        self.mask & kind.bit() != 0
    }
}

/// Methods of the unwrap family plus std methods that panic on length
/// or bounds mismatch. Resolved workspace methods take precedence.
const PANIC_METHODS: [&str; 8] = [
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "copy_from_slice",
    "clone_from_slice",
    "split_at",
    "split_at_mut",
];

/// Macros that expand to an unconditional or conditional abort.
/// `debug_assert*` is excluded: compiled out of release binaries.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Std methods that allocate (or may reallocate) on every call path.
const ALLOC_METHODS: [&str; 14] = [
    "push",
    "collect",
    "to_string",
    "to_owned",
    "to_vec",
    "extend",
    "resize",
    "reserve",
    "insert",
    "append",
    "clone",
    "or_insert",
    "or_insert_with",
    "or_default",
];

/// Macros whose expansion allocates.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Two-segment std paths that allocate.
const ALLOC_PATHS: [[&str; 2]; 4] = [
    ["Box", "new"],
    ["String", "from"],
    ["String", "with_capacity"],
    ["Vec", "with_capacity"],
];

/// Identifiers that are nondeterminism sources wherever they appear.
const NONDET_IDENTS: [&str; 8] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
    "DefaultHasher",
    "available_parallelism",
    "UNIX_EPOCH",
];

/// Integer type names for the division heuristic and pointer-as-int.
const INT_TYPES: [&str; 12] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

fn is_int_type(s: &str) -> bool {
    INT_TYPES.contains(&s)
}

/// Idents with *integer evidence* in a body: declared `let x: usize`,
/// cast `x as u32`, or bound by a `let x = ...;` whose initializer
/// contains an integer cast or a `.len()` call. Used to gate the
/// integer-division detector so float math (which never panics) stays
/// quiet.
fn int_evidence(code: &[Tok], body: (usize, usize)) -> BTreeSet<String> {
    let (open, close) = body;
    let mut out = BTreeSet::new();
    let mut i = open;
    while i + 2 <= close {
        let t = &code[i];
        if t.kind == TokKind::Ident {
            // `x as usize` / `x: u32`
            let next = &code[i + 1];
            if next.is_ident("as") && code.get(i + 2).is_some_and(|u| is_int_type(&u.text)) {
                out.insert(t.text.clone());
            }
            if next.is_punct(':')
                && !code.get(i + 2).is_some_and(|u| u.is_punct(':'))
                && code.get(i + 2).is_some_and(|u| is_int_type(&u.text))
            {
                out.insert(t.text.clone());
            }
            // `let x = <expr with integer cast or .len()>;`
            if t.is_ident("let") {
                let mut j = i + 1;
                if code.get(j).is_some_and(|u| u.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = code.get(j).filter(|u| u.kind == TokKind::Ident) {
                    if code.get(j + 1).is_some_and(|u| u.is_punct('=')) {
                        let mut k = j + 2;
                        while k <= close && !code[k].is_punct(';') {
                            let int_cast = code[k].is_ident("as")
                                && code.get(k + 1).is_some_and(|u| is_int_type(&u.text));
                            let len_call = code[k].is_ident("len")
                                && k > 0
                                && code[k - 1].is_punct('.')
                                && code.get(k + 1).is_some_and(|u| u.is_punct('('));
                            if int_cast || len_call {
                                out.insert(name.text.clone());
                                break;
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// True for an integer literal token (no float markers).
fn is_int_literal(t: &Tok) -> bool {
    t.kind == TokKind::Number
        && !t.text.contains('.')
        && !t.text.contains("f3")
        && !t.text.contains("f6")
        && !t.text.contains('e')
        && !t.text.contains('E')
}

/// Scans one function body for intrinsic effect sites.
pub fn intrinsic_sites(code: &[Tok], body: (usize, usize)) -> Vec<Site> {
    let (open, close) = body;
    let ints = int_evidence(code, body);
    let mut out = Vec::new();
    let mut i = open;
    while i <= close && i < code.len() {
        let t = &code[i];
        let next_is = |c: char| code.get(i + 1).is_some_and(|n| n.is_punct(c));
        match t.kind {
            TokKind::Ident => {
                let prev_dot = i > 0 && code[i - 1].is_punct('.');
                // Macro invocations: `name!(` / `name![`.
                if next_is('!')
                    && code
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                {
                    if PANIC_MACROS.contains(&t.text.as_str()) {
                        out.push(site(EffectKind::Panic, format!("`{}!` macro", t.text), t));
                    } else if ALLOC_MACROS.contains(&t.text.as_str()) {
                        out.push(site(
                            EffectKind::Alloc,
                            format!("`{}!` macro allocates", t.text),
                            t,
                        ));
                    }
                    i += 2;
                    continue;
                }
                if prev_dot && next_is('(') {
                    if PANIC_METHODS.contains(&t.text.as_str()) {
                        out.push(site(
                            EffectKind::Panic,
                            format!("`.{}()` may panic", t.text),
                            t,
                        ));
                    }
                    if ALLOC_METHODS.contains(&t.text.as_str()) {
                        out.push(site(
                            EffectKind::Alloc,
                            format!("`.{}()` allocates", t.text),
                            t,
                        ));
                    }
                    // Pointer-as-int: `.as_ptr() as usize`.
                    if matches!(t.text.as_str(), "as_ptr" | "as_mut_ptr") {
                        let mut k = i + 2; // after `(`
                        while k <= close && k < i + 6 {
                            if code[k].is_ident("as")
                                && code.get(k + 1).is_some_and(|u| is_int_type(&u.text))
                            {
                                out.push(site(
                                    EffectKind::Nondet,
                                    "pointer address observed as integer".to_string(),
                                    t,
                                ));
                                break;
                            }
                            k += 1;
                        }
                    }
                }
                if NONDET_IDENTS.contains(&t.text.as_str()) {
                    out.push(site(
                        EffectKind::Nondet,
                        format!("`{}` is a nondeterminism source", t.text),
                        t,
                    ));
                }
                // `Instant::now()` / `SystemTime::now()` / `thread::current()`.
                if (t.is_ident("Instant") || t.is_ident("SystemTime") || t.is_ident("thread"))
                    && next_is(':')
                    && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && code
                        .get(i + 3)
                        .is_some_and(|n| n.is_ident("now") || n.is_ident("current"))
                {
                    out.push(site(
                        EffectKind::Nondet,
                        format!("`{}::{}` read", t.text, code[i + 3].text),
                        t,
                    ));
                    i += 4;
                    continue;
                }
                // Allocating std constructor paths (`Box::new`, …).
                for [ty, f] in &ALLOC_PATHS {
                    if t.is_ident(ty)
                        && next_is(':')
                        && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
                        && code.get(i + 3).is_some_and(|n| n.is_ident(f))
                        && code.get(i + 4).is_some_and(|n| n.is_punct('('))
                    {
                        out.push(site(EffectKind::Alloc, format!("`{ty}::{f}` allocates"), t));
                    }
                }
            }
            TokKind::Punct => {
                // Slice/array indexing: `[` directly after a value —
                // ident, `)` or `]` — is `Index::index`, which panics
                // out of bounds. Attributes are `#[`, excluded by the
                // value-token requirement.
                if t.is_punct('[') && i > open {
                    let p = &code[i - 1];
                    let value_before = (p.kind == TokKind::Ident
                        && !crate::callgraph::is_keyword(&p.text))
                        || p.is_punct(')')
                        || p.is_punct(']');
                    if value_before {
                        out.push(site(
                            EffectKind::Panic,
                            "slice indexing `[...]` may be out of bounds".to_string(),
                            t,
                        ));
                    }
                }
                // Integer division/remainder panics on zero divisor.
                if (t.is_punct('/') || t.is_punct('%')) && i > open {
                    if let Some(d) = code.get(i + 1) {
                        let op = if t.is_punct('/') { "/" } else { "%" };
                        let div_by_ident = d.kind == TokKind::Ident && ints.contains(&d.text);
                        let div_by_zero = is_int_literal(d) && d.text == "0";
                        if div_by_ident || div_by_zero {
                            out.push(site(
                                EffectKind::Panic,
                                format!("integer `{op}` may divide by zero"),
                                t,
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn site(kind: EffectKind, desc: String, t: &Tok) -> Site {
    Site {
        kind,
        desc,
        line: t.line,
        col: t.col,
    }
}

/// Builtin effects of *unresolved* calls: the callee is not a workspace
/// function, so consult the std tables; anything else is assumed pure.
fn builtin_effects(callee: &Callee) -> u8 {
    // Path calls to workspace-unknown fns already covered by
    // `intrinsic_sites` tables (macros, alloc paths); methods covered
    // by the method tables. Nothing extra here yet — the hook exists so
    // new std knowledge lands in one place.
    let _ = callee;
    0
}

/// The full analysis result.
pub struct Analysis {
    /// Per-node effect summaries (parallel to `graph.nodes`).
    pub effects: Vec<FnEffects>,
    /// Per-node intrinsic sites (parallel to `graph.nodes`).
    pub sites: Vec<Vec<Site>>,
    /// Node indices assumed effect-free via `[[assume]]` (not traversed).
    pub assumed: Vec<bool>,
    /// Resolved root sets per `[[hotpath]]` entry (empty = unresolved).
    pub roots: Vec<Vec<usize>>,
}

/// Runs the intrinsic scan and the worklist fixpoint over the graph.
/// `codes[node.file]` must be the code-token slice the node's body
/// indexes into.
pub fn analyze(graph: &Graph, codes: &[Vec<Tok>], cfg: &Config) -> Analysis {
    let n = graph.nodes.len();
    let mut assumed = vec![false; n];
    for a in &cfg.assumes {
        for idx in graph.resolve_qname(&a.func) {
            assumed[idx] = true;
        }
    }

    let mut sites: Vec<Vec<Site>> = Vec::with_capacity(n);
    for node in &graph.nodes {
        sites.push(intrinsic_sites(&codes[node.file], node.item.body));
    }

    // Seed the lattice from intrinsics plus unresolved-call builtins.
    let mut effects = vec![FnEffects::default(); n];
    for i in 0..n {
        if assumed[i] {
            continue;
        }
        let mut mask = 0u8;
        for s in &sites[i] {
            mask |= s.kind.bit();
        }
        for c in &graph.nodes[i].calls {
            if graph.resolve(&c.target).is_empty() {
                mask |= builtin_effects(&c.target);
            }
        }
        effects[i].mask = mask;
    }

    // Worklist fixpoint: caller inherits callee bits. Deterministic:
    // node order is (file, line); the lattice is monotone so the
    // result is order-independent anyway.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if assumed[i] {
                continue;
            }
            let mut mask = effects[i].mask;
            for &e in &graph.nodes[i].edges {
                if !assumed[e] {
                    mask |= effects[e].mask;
                }
            }
            if mask != effects[i].mask {
                effects[i].mask = mask;
                changed = true;
            }
        }
    }

    let roots = cfg
        .hotpaths
        .iter()
        .map(|h| graph.resolve_qname(&h.root))
        .collect();

    Analysis {
        effects,
        sites,
        assumed,
        roots,
    }
}

/// Emits D006/D007/D008 diagnostics (plus config-resolution errors) for
/// the declared hot-path roots.
pub fn root_diagnostics(graph: &Graph, analysis: &Analysis, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // One diagnostic per (rule, site), first root wins (config order).
    let mut seen: BTreeSet<(&'static str, String, u32, u32)> = BTreeSet::new();

    for (h, root_set) in cfg.hotpaths.iter().zip(&analysis.roots) {
        if root_set.is_empty() {
            out.push(Diagnostic {
                rule: "D000",
                severity: Severity::Error,
                path: "detlint.toml".to_string(),
                line: h.config_line,
                col: 1,
                end_line: h.config_line,
                message: format!("hotpath root `{}` resolves to no function", h.root),
                help: "fix the qualified name (crate::module::Type::fn) or remove the entry"
                    .to_string(),
                waived: false,
                waive_reason: None,
            });
            continue;
        }
        let kinds: Vec<EffectKind> = h
            .rules
            .iter()
            .filter_map(|r| match r.as_str() {
                "D006" => Some(EffectKind::Panic),
                "D007" => Some(EffectKind::Alloc),
                "D008" => Some(EffectKind::Nondet),
                _ => None,
            })
            .collect();
        for &root in root_set {
            // BFS with parent links for chain reconstruction.
            let n = graph.nodes.len();
            let mut parent: Vec<Option<usize>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            visited[root] = true;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                for k in &kinds {
                    for s in analysis.sites[u].iter().filter(|s| s.kind == *k) {
                        let node = &graph.nodes[u];
                        let key = (k.rule(), node.item.path.clone(), s.line, s.col);
                        if !seen.insert(key) {
                            continue;
                        }
                        let chain = chain_of(graph, &parent, root, u);
                        out.push(site_diag(
                            &graph.nodes[root].item.qname,
                            *k,
                            s,
                            node,
                            &chain,
                        ));
                    }
                }
                for &e in &graph.nodes[u].edges {
                    if !visited[e] && !analysis.assumed[e] {
                        visited[e] = true;
                        parent[e] = Some(u);
                        queue.push_back(e);
                    }
                }
            }
        }
    }
    out
}

/// Reconstructs `root → … → site_fn` as a readable chain.
fn chain_of(graph: &Graph, parent: &[Option<usize>], root: usize, site_fn: usize) -> String {
    let mut rev = vec![site_fn];
    let mut cur = site_fn;
    while cur != root {
        let Some(p) = parent[cur] else { break };
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.iter()
        .map(|&i| graph.nodes[i].item.qname.as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

fn site_diag(
    root_qname: &str,
    kind: EffectKind,
    s: &Site,
    node: &crate::callgraph::Node,
    chain: &str,
) -> Diagnostic {
    Diagnostic {
        rule: kind.rule(),
        severity: Severity::Error,
        path: node.item.path.clone(),
        line: s.line,
        col: s.col,
        end_line: s.line,
        message: format!(
            "hot path `{root_qname}` may {}: {} (via {chain})",
            kind.verb(),
            s.desc
        ),
        help: match kind {
            EffectKind::Panic => {
                "make the access infallible (iterators, `.get()`, pre-validated bounds) or \
                 waive the proven invariant with `// detlint: allow(D006) reason=...`"
            }
            EffectKind::Alloc => {
                "hoist the allocation out of the steady-state loop (pre-sized buffers) or \
                 waive warmup-only growth with `// detlint: allow(D007) reason=...`"
            }
            EffectKind::Nondet => {
                "route entropy through seeded streams and remove clock/thread-id reads, or \
                 waive with `// detlint: allow(D008) reason=...`"
            }
        }
        .to_string(),
        waived: false,
        waive_reason: None,
    }
}

/// Renders the call graph + effect summaries as the `detlint effects`
/// JSON artifact (schema version 1).
pub fn render_effects_json(graph: &Graph, analysis: &Analysis, cfg: &Config) -> String {
    use std::fmt::Write as _;
    let esc = crate::diag::json_escape;
    let mut s = String::from("{\n  \"version\": 1,\n  \"functions\": [\n");
    let n = graph.nodes.len();
    for (i, node) in graph.nodes.iter().enumerate() {
        let fx = analysis.effects[i];
        let calls: Vec<String> = node
            .edges
            .iter()
            .map(|&e| format!("\"{}\"", esc(&graph.nodes[e].item.qname)))
            .collect();
        let _ = writeln!(
            s,
            "    {{\"qname\":\"{}\",\"path\":\"{}\",\"line\":{},\"assumed\":{},\
             \"may_panic\":{},\"may_alloc\":{},\"nondet\":{},\"calls\":[{}]}}{}",
            esc(&node.item.qname),
            esc(&node.item.path),
            node.item.line,
            analysis.assumed[i],
            fx.has(EffectKind::Panic),
            fx.has(EffectKind::Alloc),
            fx.has(EffectKind::Nondet),
            calls.join(","),
            if i + 1 == n { "" } else { "," }
        );
    }
    s.push_str("  ],\n  \"roots\": [\n");
    let m = cfg.hotpaths.len();
    for (k, h) in cfg.hotpaths.iter().enumerate() {
        let resolved: Vec<String> = analysis.roots[k]
            .iter()
            .map(|&i| format!("\"{}\"", esc(&graph.nodes[i].item.qname)))
            .collect();
        let rules: Vec<String> = h.rules.iter().map(|r| format!("\"{}\"", esc(r))).collect();
        let _ = writeln!(
            s,
            "    {{\"root\":\"{}\",\"rules\":[{}],\"resolved\":[{}]}}{}",
            esc(&h.root),
            rules.join(","),
            resolved.join(","),
            if k + 1 == m { "" } else { "," }
        );
    }
    let edges: usize = graph.nodes.iter().map(|n| n.edges.len()).sum();
    let _ = write!(
        s,
        "  ],\n  \"summary\": {{\"functions\": {n}, \"edges\": {edges}}}\n}}\n"
    );
    s
}

/// Walks a list of rules tokens — re-exported for rule-table checks.
pub fn is_hotpath_rule(rule: &str) -> bool {
    matches!(rule, "D006" | "D007" | "D008")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sites_of(src: &str) -> Vec<Site> {
        let code: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let open = code.iter().position(|t| t.is_punct('{')).unwrap();
        intrinsic_sites(&code, (open, code.len() - 1))
    }

    #[test]
    fn indexing_and_unwrap_are_panic_sites() {
        let s = sites_of("fn f(xs: &[f64], i: usize) -> f64 { xs[i] + xs.first().unwrap() }");
        let kinds: Vec<EffectKind> = s.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![EffectKind::Panic, EffectKind::Panic]);
        assert!(s[0].desc.contains("indexing"));
        assert!(s[1].desc.contains("unwrap"));
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let s = sites_of("fn f() -> [u8; 2] { let a = [1u8, 2]; a }");
        assert!(s.is_empty(), "array literal flagged: {s:?}");
    }

    #[test]
    fn integer_division_needs_integer_evidence() {
        // `n` is int-evidenced by the cast; `x / 2.0` is float math.
        let s = sites_of(
            "fn f(x: f64, raw: f64) -> f64 { let n = raw as usize; let _ = 10 / n; x / 2.0 }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert!(s[0].desc.contains("divide by zero"));
    }

    #[test]
    fn alloc_sites_cover_macros_methods_and_paths() {
        let s = sites_of(
            "fn f(v: &mut Vec<u8>) { v.push(1); let b = Box::new(2u8); let t = format!(\"x\"); }",
        );
        let kinds: Vec<EffectKind> = s.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![EffectKind::Alloc, EffectKind::Alloc, EffectKind::Alloc]
        );
    }

    #[test]
    fn nondet_sites_cover_clock_thread_and_pointer() {
        let s = sites_of(
            "fn f(xs: &[u8]) -> usize { let t = Instant::now(); let id = thread::current(); \
             xs.as_ptr() as usize }",
        );
        let kinds: Vec<EffectKind> = s.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![EffectKind::Nondet, EffectKind::Nondet, EffectKind::Nondet]
        );
    }

    #[test]
    fn debug_assert_is_not_a_panic_site() {
        let s = sites_of("fn f(x: u32) { debug_assert!(x > 0); assert!(x > 0); }");
        assert_eq!(s.len(), 1);
        assert!(s[0].desc.contains("assert"));
    }
}
