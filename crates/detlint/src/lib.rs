//! `detlint` — the workspace's determinism & numeric-safety lint pass.
//!
//! The PR-1 determinism contract (DESIGN.md §8) says every pipeline
//! stage must produce bit-for-bit identical results for a fixed seed,
//! regardless of thread count. That contract is easy to break silently:
//! one `HashMap` iteration feeding a report, one `Instant::now()` in a
//! feature, one `thread_rng()` in a simulator patch. `detlint` turns
//! the contract into named, enforced rules:
//!
//! | rule | forbids |
//! |------|---------|
//! | D001 | `HashMap`/`HashSet` in crates whose iteration order feeds output |
//! | D002 | wall-clock reads outside `crates/bench` |
//! | D003 | unseeded entropy anywhere |
//! | D004 | `unwrap()`/`expect()`/`panic!` in library non-test code |
//! | D005 | iterator float reductions chained onto `par_map` results |
//! | D006 | panic sites reachable from a declared hot-path root |
//! | D007 | allocation sites reachable from a declared hot-path root |
//! | D008 | nondeterminism sources flowing into a declared hot-path root |
//!
//! D001–D005 are per-file token rules. D006–D008 are *interprocedural*:
//! a symbol table ([`items`]), a workspace call graph ([`callgraph`]),
//! and a worklist fixpoint over a `MayPanic`/`MayAlloc`/`NondetSource`
//! effect lattice ([`effects`]) prove every function reachable from the
//! `[[hotpath]]` roots declared in `detlint.toml` free of the armed
//! effects — with the full root→site call chain in each diagnostic.
//!
//! Exceptions are explicit and reasoned: inline
//! `// detlint: allow(D00X) reason=...` comments, `[[allow]]` entries,
//! or call-graph-cutting `[[assume]]` entries in `detlint.toml`. A
//! waiver without a reason is itself a diagnostic.
//!
//! The analysis is a hand-rolled lexer plus structural passes — no
//! external dependencies, no type information. Rules are tuned so that
//! their false positives are rare and *loud*, never silent.

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod effects;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::{Config, ConfigError};
pub use diag::{Diagnostic, Severity};
pub use rules::{RuleInfo, RULES};

use std::collections::BTreeMap;
use std::path::Path;

/// One source file handed to the checker: the rule profile comes from
/// `rel_path`, the interprocedural qnames from `crate_name`.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Cargo package name of the owning crate (dashes allowed; they
    /// normalize to underscores in qnames).
    pub crate_name: String,
    /// Full file text.
    pub src: String,
}

/// Outcome of checking a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics (including waived ones), in reporting order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were lexed and checked.
    pub files_scanned: usize,
}

impl Report {
    /// Number of non-waived errors — the exit-code driver.
    pub fn blocking(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_blocking()).count()
    }
}

/// Checks a single source text as if it lived at `rel_path` (which
/// decides the rule profile). Used by the fixture self-tests; the
/// interprocedural pass sees only this one file.
pub fn check_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let file = SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: guess_crate_name(rel_path),
        src: src.to_string(),
    };
    check_sources(std::slice::from_ref(&file), cfg).diagnostics
}

/// Derives a crate name from a workspace-relative path when the real
/// Cargo package name is unavailable (fixture checks).
fn guess_crate_name(rel_path: &str) -> String {
    rel_path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("workspace")
        .to_string()
}

/// Builds the call graph and runs the effect fixpoint over the strict-
/// profile files of `files`. Also used by `detlint effects`.
pub fn analyze_effects(
    files: &[SourceFile],
    cfg: &Config,
) -> (callgraph::Graph, effects::Analysis) {
    let mut fn_lists = Vec::new();
    let mut codes: Vec<Vec<lexer::Tok>> = Vec::new();
    for f in files {
        // Only strict library profiles join the graph: test/example/
        // bench code cannot sit on a serving hot path.
        let Some(ruleset) = rules::classify(&f.rel_path) else {
            continue;
        };
        if !ruleset.d004 {
            continue;
        }
        let code: Vec<lexer::Tok> = lexer::lex(&f.src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .collect();
        fn_lists.push(items::extract(&f.rel_path, &f.crate_name, &code));
        codes.push(code);
    }
    let graph = callgraph::Graph::build(fn_lists, &codes);
    let analysis = effects::analyze(&graph, &codes, cfg);
    (graph, analysis)
}

/// Checks a set of files: per-file rules D001–D005, the interprocedural
/// hot-path rules D006–D008, waiver application, and staleness warnings
/// (W001 unused allow, W002 unused inline waiver, W003 unused assume).
pub fn check_sources(files: &[SourceFile], cfg: &Config) -> Report {
    let mut report = Report::default();
    let mut allow_used = vec![false; cfg.allows.len()];

    // Interprocedural pass first; its diagnostics are anchored at the
    // offending *sites*, so each file's inline waivers can cover them.
    let (graph, analysis) = analyze_effects(files, cfg);
    let mut pending = effects::root_diagnostics(&graph, &analysis, cfg);
    for a in &cfg.assumes {
        if graph.resolve_qname(&a.func).is_empty() {
            pending.push(Diagnostic {
                rule: "W003",
                severity: Severity::Warning,
                path: "detlint.toml".to_string(),
                line: a.config_line,
                col: 1,
                end_line: a.config_line,
                message: format!("assume entry `{}` resolves to no function", a.func),
                help: "fix the qualified name or remove the stale entry".to_string(),
                waived: false,
                waive_reason: None,
            });
        }
    }

    for f in files {
        let Some(ruleset) = rules::classify(&f.rel_path) else {
            continue;
        };
        report.files_scanned += 1;
        let all = lexer::lex(&f.src);
        let code: Vec<lexer::Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();

        let mut diags = rules::run_rules(&f.rel_path, &code, ruleset);
        // Merge in this file's interprocedural findings before waiver
        // application so site-level waivers discharge them.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].path == f.rel_path {
                diags.push(pending.remove(i));
            } else {
                i += 1;
            }
        }
        let (mut waivers, mut malformed) = rules::inline_waivers(&f.rel_path, &all, &code);
        let unused = rules::apply_inline_waivers(&f.rel_path, &mut diags, &mut waivers);
        diags.append(&mut malformed);
        diags.extend(unused);

        // Config allowlist applies after inline waivers.
        for d in diags.iter_mut() {
            if d.waived || d.severity != Severity::Error {
                continue;
            }
            for (k, entry) in cfg.allows.iter().enumerate() {
                if entry.covers(d.rule, &d.path, d.line) {
                    d.waived = true;
                    d.waive_reason = Some(entry.reason.clone());
                    allow_used[k] = true;
                    break;
                }
            }
        }
        report.diagnostics.append(&mut diags);
    }

    // Whatever is still pending is anchored outside the checked files
    // (config-resolution errors at detlint.toml).
    report.diagnostics.append(&mut pending);

    // Stale allowlist entries are reported (as warnings) so the config
    // shrinks as violations are fixed.
    for (k, used) in allow_used.iter().enumerate() {
        if !used {
            let entry = &cfg.allows[k];
            report.diagnostics.push(Diagnostic {
                rule: "W001",
                severity: Severity::Warning,
                path: "detlint.toml".to_string(),
                line: entry.config_line,
                col: 1,
                end_line: entry.config_line,
                message: format!(
                    "allow entry ({} at {}) matches no diagnostic",
                    entry.rule, entry.path
                ),
                help: "remove the stale entry from detlint.toml".to_string(),
                waived: false,
                waive_reason: None,
            });
        }
    }

    diag::sort(&mut report.diagnostics);
    report
}

/// Reads every policed `.rs` file under `root`, resolving each file's
/// Cargo package name from its crate's `Cargo.toml`.
///
/// # Errors
///
/// Returns an error when the tree cannot be read or a file is not
/// valid UTF-8.
pub fn workspace_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let files =
        walk::rust_sources(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let names = crate_names(root);
    let mut out = Vec::new();
    for rel in files {
        if rules::classify(&rel).is_none() {
            continue;
        }
        let full = root.join(&rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .and_then(|dir| names.get(&format!("crates/{dir}")).cloned())
            .or_else(|| names.get("").cloned())
            .unwrap_or_else(|| guess_crate_name(&rel));
        out.push(SourceFile {
            rel_path: rel,
            crate_name,
            src,
        });
    }
    Ok(out)
}

/// Maps crate directory (`crates/<dir>`, or `""` for the workspace
/// root package) to its Cargo package name.
fn crate_names(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        out.insert(String::new(), name);
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let dir = e.path();
            if let Some(name) = package_name(&dir.join("Cargo.toml")) {
                if let Some(d) = dir.file_name().and_then(|s| s.to_str()) {
                    out.insert(format!("crates/{d}"), name);
                }
            }
        }
    }
    out
}

/// Extracts `name = "..."` from a `[package]` section.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_package = l == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = l.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Checks every policed `.rs` file under `root` against `cfg`.
///
/// # Errors
///
/// Returns an error when the tree cannot be read or a file is not
/// valid UTF-8 — never for rule violations (those are diagnostics).
pub fn check_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = workspace_sources(root)?;
    Ok(check_sources(&files, cfg))
}

/// Renders the call-graph + effects JSON artifact for the workspace
/// (the `detlint effects` subcommand).
///
/// # Errors
///
/// Same failure modes as [`check_workspace`].
pub fn effects_workspace(root: &Path, cfg: &Config) -> Result<String, String> {
    let files = workspace_sources(root)?;
    let (graph, analysis) = analyze_effects(&files, cfg);
    Ok(effects::render_effects_json(&graph, &analysis, cfg))
}
