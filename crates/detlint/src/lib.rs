//! `detlint` — the workspace's determinism & numeric-safety lint pass.
//!
//! The PR-1 determinism contract (DESIGN.md §8) says every pipeline
//! stage must produce bit-for-bit identical results for a fixed seed,
//! regardless of thread count. That contract is easy to break silently:
//! one `HashMap` iteration feeding a report, one `Instant::now()` in a
//! feature, one `thread_rng()` in a simulator patch. `detlint` turns
//! the contract into named, enforced rules:
//!
//! | rule | forbids |
//! |------|---------|
//! | D001 | `HashMap`/`HashSet` in crates whose iteration order feeds output |
//! | D002 | wall-clock reads outside `crates/bench` |
//! | D003 | unseeded entropy anywhere |
//! | D004 | `unwrap()`/`expect()`/`panic!` in library non-test code |
//! | D005 | iterator float reductions chained onto `par_map` results |
//!
//! Exceptions are explicit and reasoned: inline
//! `// detlint: allow(D00X) reason=...` comments, or `[[allow]]`
//! entries in `detlint.toml`. A waiver without a reason is itself a
//! diagnostic.
//!
//! The analysis is a hand-rolled lexer plus a lightweight structural
//! pass (attribute/test-region and brace tracking) — no external
//! dependencies, no type information. Rules are tuned so that their
//! false positives are rare and *loud*, never silent.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::{Config, ConfigError};
pub use diag::{Diagnostic, Severity};
pub use rules::{RuleInfo, RULES};

use std::path::Path;

/// Outcome of checking a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics (including waived ones), in reporting order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were lexed and checked.
    pub files_scanned: usize,
}

impl Report {
    /// Number of non-waived errors — the exit-code driver.
    pub fn blocking(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_blocking()).count()
    }
}

/// Checks a single source text as if it lived at `rel_path` (which
/// decides the rule profile). Used by the fixture self-tests.
pub fn check_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    check_source_inner(rel_path, src, cfg, &mut Vec::new())
}

fn check_source_inner(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    allow_used: &mut Vec<bool>,
) -> Vec<Diagnostic> {
    let Some(ruleset) = rules::classify(rel_path) else {
        return Vec::new();
    };
    let all = lexer::lex(src);
    let code: Vec<lexer::Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();

    let mut diags = rules::run_rules(rel_path, &code, ruleset);
    let (mut waivers, mut malformed) = rules::inline_waivers(rel_path, &all, &code);
    let unused = rules::apply_inline_waivers(rel_path, &mut diags, &mut waivers);
    diags.append(&mut malformed);
    diags.extend(unused);

    // Config allowlist applies after inline waivers.
    allow_used.resize(cfg.allows.len(), false);
    for d in diags.iter_mut() {
        if d.waived || d.severity != Severity::Error {
            continue;
        }
        for (k, entry) in cfg.allows.iter().enumerate() {
            if entry.covers(d.rule, &d.path, d.line) {
                d.waived = true;
                d.waive_reason = Some(entry.reason.clone());
                allow_used[k] = true;
                break;
            }
        }
    }
    diags
}

/// Checks every policed `.rs` file under `root` against `cfg`.
///
/// # Errors
///
/// Returns an error when the tree cannot be read or a file is not
/// valid UTF-8 — never for rule violations (those are diagnostics).
pub fn check_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files =
        walk::rust_sources(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let mut report = Report::default();
    let mut allow_used = vec![false; cfg.allows.len()];

    for rel in &files {
        if rules::classify(rel).is_none() {
            continue;
        }
        let full = root.join(rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(check_source_inner(rel, &src, cfg, &mut allow_used));
    }

    // Stale allowlist entries are reported (as warnings) so the config
    // shrinks as violations are fixed.
    for (k, used) in allow_used.iter().enumerate() {
        if !used {
            let entry = &cfg.allows[k];
            report.diagnostics.push(Diagnostic {
                rule: "W001",
                severity: Severity::Warning,
                path: "detlint.toml".to_string(),
                line: entry.config_line,
                col: 1,
                message: format!(
                    "allow entry ({} at {}) matches no diagnostic",
                    entry.rule, entry.path
                ),
                help: "remove the stale entry from detlint.toml".to_string(),
                waived: false,
                waive_reason: None,
            });
        }
    }

    diag::sort(&mut report.diagnostics);
    Ok(report)
}
