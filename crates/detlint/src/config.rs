//! `detlint.toml`: vetted, *reasoned* exceptions to the rules, plus the
//! interprocedural pass's inputs — `[[hotpath]]` roots (functions that
//! must be proven panic-free / alloc-free / deterministic, D006–D008)
//! and `[[assume]]` entries (functions treated as effect-free with a
//! written justification, cutting the call graph).
//!
//! The parser covers exactly the subset of TOML the file needs —
//! comments, array-of-table headers, and `key = "string"` /
//! `key = integer` pairs — because the workspace is offline and detlint
//! takes no dependencies. Anything outside that subset is a hard error:
//! a config file that silently half-parses would waive the wrong things.

/// One vetted exception from `detlint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the exception applies to (e.g. `"D002"`).
    pub rule: String,
    /// Workspace-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Restricts the exception to one line when set.
    pub line: Option<u32>,
    /// Mandatory written justification.
    pub reason: String,
    /// 1-based line of the entry header in the config file (for
    /// unused-entry reporting).
    pub config_line: u32,
}

impl AllowEntry {
    /// Whether this entry covers a diagnostic at `(rule, path, line)`.
    pub fn covers(&self, rule: &str, path: &str, line: u32) -> bool {
        if self.rule != rule {
            return false;
        }
        let path_ok = if let Some(prefix) = self.path.strip_suffix('/') {
            path.starts_with(prefix) && path[prefix.len()..].starts_with('/')
        } else {
            self.path == path
        };
        path_ok && self.line.is_none_or(|l| l == line)
    }
}

/// A declared hot-path root: interprocedural rules to prove for every
/// function reachable from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotpathEntry {
    /// Qualified function name, e.g. `streamd::serve::score_batch_compiled`
    /// (suffix-matched against workspace qnames).
    pub root: String,
    /// Armed rules, a subset of `D006`/`D007`/`D008`.
    pub rules: Vec<String>,
    /// 1-based line of the entry header in the config file.
    pub config_line: u32,
}

/// A function assumed effect-free for the interprocedural pass; the
/// call graph is cut at it and the reason is the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssumeEntry {
    /// Qualified function name (suffix-matched).
    pub func: String,
    /// Mandatory written justification.
    pub reason: String,
    /// 1-based line of the entry header in the config file.
    pub config_line: u32,
}

/// Parsed configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
    /// All `[[hotpath]]` roots, in file order.
    pub hotpaths: Vec<HotpathEntry>,
    /// All `[[assume]]` entries, in file order.
    pub assumes: Vec<AssumeEntry>,
}

/// A config-file syntax or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[derive(Default)]
struct Builder {
    rule: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    reason: Option<String>,
    root: Option<String>,
    rules: Option<String>,
    func: Option<String>,
    config_line: u32,
}

/// Which array-of-tables section a builder belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Allow,
    Hotpath,
    Assume,
}

impl Builder {
    fn err(&self, msg: &str) -> ConfigError {
        ConfigError {
            line: self.config_line,
            message: msg.to_string(),
        }
    }

    fn finish_allow(mut self) -> Result<AllowEntry, ConfigError> {
        let rule = self
            .rule
            .take()
            .ok_or_else(|| self.err("allow entry missing `rule`"))?;
        if !is_known_rule(&rule) {
            return Err(self.err(&format!("unknown rule id `{rule}`")));
        }
        let path = self
            .path
            .take()
            .ok_or_else(|| self.err("allow entry missing `path`"))?;
        let reason = self.reason.take().ok_or_else(|| {
            self.err(
                "allow entry missing `reason` — every waiver must carry a written justification",
            )
        })?;
        if reason.trim().is_empty() {
            return Err(self.err("allow entry has an empty `reason`"));
        }
        Ok(AllowEntry {
            rule,
            path,
            line: self.line,
            reason,
            config_line: self.config_line,
        })
    }

    fn finish_hotpath(mut self) -> Result<HotpathEntry, ConfigError> {
        let root = self
            .root
            .take()
            .ok_or_else(|| self.err("hotpath entry missing `root`"))?;
        let rules_raw = self
            .rules
            .take()
            .ok_or_else(|| self.err("hotpath entry missing `rules` (e.g. \"D006,D007\")"))?;
        let rules: Vec<String> = rules_raw
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Err(self.err("hotpath entry has an empty `rules` list"));
        }
        for r in &rules {
            if !matches!(r.as_str(), "D006" | "D007" | "D008") {
                return Err(self.err(&format!(
                    "hotpath rule `{r}` is not interprocedural (use D006/D007/D008)"
                )));
            }
        }
        Ok(HotpathEntry {
            root,
            rules,
            config_line: self.config_line,
        })
    }

    fn finish_assume(mut self) -> Result<AssumeEntry, ConfigError> {
        let func = self
            .func
            .take()
            .ok_or_else(|| self.err("assume entry missing `fn`"))?;
        let reason = self.reason.take().ok_or_else(|| {
            self.err("assume entry missing `reason` — assumptions must carry a justification")
        })?;
        if reason.trim().is_empty() {
            return Err(self.err("assume entry has an empty `reason`"));
        }
        Ok(AssumeEntry {
            func,
            reason,
            config_line: self.config_line,
        })
    }
}

fn is_known_rule(rule: &str) -> bool {
    matches!(
        rule,
        "D001" | "D002" | "D003" | "D004" | "D005" | "D006" | "D007" | "D008"
    )
}

/// Parses the `detlint.toml` text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut current: Option<(Section, Builder)> = None;

    let flush =
        |cur: &mut Option<(Section, Builder)>, cfg: &mut Config| -> Result<(), ConfigError> {
            if let Some((section, b)) = cur.take() {
                match section {
                    Section::Allow => cfg.allows.push(b.finish_allow()?),
                    Section::Hotpath => cfg.hotpaths.push(b.finish_hotpath()?),
                    Section::Assume => cfg.assumes.push(b.finish_assume()?),
                }
            }
            Ok(())
        };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let section = match line {
            "[[allow]]" => Some(Section::Allow),
            "[[hotpath]]" => Some(Section::Hotpath),
            "[[assume]]" => Some(Section::Assume),
            _ => None,
        };
        if let Some(section) = section {
            flush(&mut current, &mut cfg)?;
            current = Some((
                section,
                Builder {
                    config_line: lineno,
                    ..Builder::default()
                },
            ));
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!(
                    "unsupported table header `{line}` (only `[[allow]]`, `[[hotpath]]`, \
                     `[[assume]]`)"
                ),
            });
        }
        let Some((section, builder)) = current.as_mut() else {
            return Err(ConfigError {
                line: lineno,
                message: "key outside an entry".to_string(),
            });
        };
        let (key, value) = split_kv(line, lineno)?;
        match (*section, key) {
            (Section::Allow, "rule") => builder.rule = Some(parse_string(value, lineno)?),
            (Section::Allow, "path") => builder.path = Some(parse_string(value, lineno)?),
            (Section::Allow, "reason") | (Section::Assume, "reason") => {
                builder.reason = Some(parse_string(value, lineno)?);
            }
            (Section::Allow, "line") => {
                builder.line = Some(value.trim().parse::<u32>().map_err(|_| ConfigError {
                    line: lineno,
                    message: format!("`line` must be an integer, got `{value}`"),
                })?);
            }
            (Section::Hotpath, "root") => builder.root = Some(parse_string(value, lineno)?),
            (Section::Hotpath, "rules") => builder.rules = Some(parse_string(value, lineno)?),
            (Section::Assume, "fn") => builder.func = Some(parse_string(value, lineno)?),
            (_, other) => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown key `{other}` in this entry"),
                });
            }
        }
    }
    flush(&mut current, &mut cfg)?;
    Ok(cfg)
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str, lineno: u32) -> Result<(&str, &str), ConfigError> {
    let Some(eq) = line.find('=') else {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        });
    };
    Ok((line[..eq].trim(), line[eq + 1..].trim()))
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{v}`"),
        })?;
    // The allowlist never needs escapes beyond `\"` and `\\`.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let cfg = parse(
            "# vetted exceptions\n\
             [[allow]]\n\
             rule = \"D002\"\n\
             path = \"crates/core/src/twostage.rs\"\n\
             line = 206\n\
             reason = \"train-time metadata only\"\n\
             \n\
             [[allow]]\n\
             rule = \"D001\"\n\
             path = \"crates/mlkit/src/\"  # prefix\n\
             reason = \"keys sorted on output\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].line, Some(206));
        assert!(cfg.allows[0].covers("D002", "crates/core/src/twostage.rs", 206));
        assert!(!cfg.allows[0].covers("D002", "crates/core/src/twostage.rs", 207));
        assert!(cfg.allows[1].covers("D001", "crates/mlkit/src/gbdt.rs", 1));
        assert!(!cfg.allows[1].covers("D001", "crates/mlkit/src2/gbdt.rs", 1));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = parse("[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let err =
            parse("[[allow]]\nrule = \"D099\"\npath = \"x.rs\"\nreason = \"r\"\n").unwrap_err();
        assert!(err.message.contains("unknown rule"));
    }

    #[test]
    fn unknown_key_rejected() {
        let err = parse("[[allow]]\nrulez = \"D001\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn hotpath_and_assume_entries_parse() {
        let cfg = parse(
            "[[hotpath]]\n\
             root = \"mlkit::fastpath::CompiledGbdt::predict_proba_into\"\n\
             rules = \"D006, D007\"\n\
             \n\
             [[assume]]\n\
             fn = \"streamd::serve::score_batch_interpreted\"\n\
             reason = \"fallback arm, bounded by config\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.hotpaths.len(), 1);
        assert_eq!(cfg.hotpaths[0].rules, vec!["D006", "D007"]);
        assert_eq!(cfg.assumes.len(), 1);
        assert_eq!(
            cfg.assumes[0].func,
            "streamd::serve::score_batch_interpreted"
        );
    }

    #[test]
    fn hotpath_rejects_per_file_rules() {
        let err = parse("[[hotpath]]\nroot = \"x::f\"\nrules = \"D004\"\n").unwrap_err();
        assert!(err.message.contains("not interprocedural"));
    }

    #[test]
    fn assume_requires_reason() {
        let err = parse("[[assume]]\nfn = \"x::f\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn interprocedural_rules_are_known_to_allow_entries() {
        let cfg = parse(
            "[[allow]]\nrule = \"D007\"\npath = \"crates/core/src/features.rs\"\n\
             reason = \"rows pushed into caller-presized buffers\"\n",
        )
        .expect("D006-D008 must be waivable");
        assert_eq!(cfg.allows[0].rule, "D007");
    }

    #[test]
    fn prefix_requires_separator() {
        let cfg = parse("[[allow]]\nrule = \"D004\"\npath = \"crates/core/\"\nreason = \"r\"\n")
            .expect("parses");
        assert!(cfg.allows[0].covers("D004", "crates/core/src/lib.rs", 9));
        assert!(!cfg.allows[0].covers("D004", "crates/core2/src/lib.rs", 9));
    }
}
