//! `detlint.toml` allowlist: vetted, *reasoned* exceptions to the rules.
//!
//! The parser covers exactly the subset of TOML the allowlist needs —
//! comments, `[[allow]]` array-of-table headers, and `key = "string"` /
//! `key = integer` pairs — because the workspace is offline and detlint
//! takes no dependencies. Anything outside that subset is a hard error:
//! a config file that silently half-parses would waive the wrong things.

/// One vetted exception from `detlint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the exception applies to (e.g. `"D002"`).
    pub rule: String,
    /// Workspace-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Restricts the exception to one line when set.
    pub line: Option<u32>,
    /// Mandatory written justification.
    pub reason: String,
    /// 1-based line of the entry header in the config file (for
    /// unused-entry reporting).
    pub config_line: u32,
}

impl AllowEntry {
    /// Whether this entry covers a diagnostic at `(rule, path, line)`.
    pub fn covers(&self, rule: &str, path: &str, line: u32) -> bool {
        if self.rule != rule {
            return false;
        }
        let path_ok = if let Some(prefix) = self.path.strip_suffix('/') {
            path.starts_with(prefix) && path[prefix.len()..].starts_with('/')
        } else {
            self.path == path
        };
        path_ok && self.line.is_none_or(|l| l == line)
    }
}

/// Parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
}

/// A config-file syntax or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

struct Builder {
    rule: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    reason: Option<String>,
    config_line: u32,
}

impl Builder {
    fn finish(self) -> Result<AllowEntry, ConfigError> {
        let err = |msg: &str| ConfigError {
            line: self.config_line,
            message: msg.to_string(),
        };
        let rule = self.rule.ok_or_else(|| err("allow entry missing `rule`"))?;
        if !is_known_rule(&rule) {
            return Err(ConfigError {
                line: self.config_line,
                message: format!("unknown rule id `{rule}`"),
            });
        }
        let path = self.path.ok_or_else(|| err("allow entry missing `path`"))?;
        let reason = self.reason.ok_or_else(|| {
            err("allow entry missing `reason` — every waiver must carry a written justification")
        })?;
        if reason.trim().is_empty() {
            return Err(err("allow entry has an empty `reason`"));
        }
        Ok(AllowEntry {
            rule,
            path,
            line: self.line,
            reason,
            config_line: self.config_line,
        })
    }
}

fn is_known_rule(rule: &str) -> bool {
    matches!(rule, "D001" | "D002" | "D003" | "D004" | "D005")
}

/// Parses the `detlint.toml` allowlist text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut allows = Vec::new();
    let mut current: Option<Builder> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(b) = current.take() {
                allows.push(b.finish()?);
            }
            current = Some(Builder {
                rule: None,
                path: None,
                line: None,
                reason: None,
                config_line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unsupported table header `{line}` (only `[[allow]]`)"),
            });
        }
        let Some(builder) = current.as_mut() else {
            return Err(ConfigError {
                line: lineno,
                message: "key outside an `[[allow]]` entry".to_string(),
            });
        };
        let (key, value) = split_kv(line, lineno)?;
        match key {
            "rule" => builder.rule = Some(parse_string(value, lineno)?),
            "path" => builder.path = Some(parse_string(value, lineno)?),
            "reason" => builder.reason = Some(parse_string(value, lineno)?),
            "line" => {
                builder.line = Some(value.trim().parse::<u32>().map_err(|_| ConfigError {
                    line: lineno,
                    message: format!("`line` must be an integer, got `{value}`"),
                })?);
            }
            other => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown key `{other}` in allow entry"),
                });
            }
        }
    }
    if let Some(b) = current.take() {
        allows.push(b.finish()?);
    }
    Ok(Config { allows })
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str, lineno: u32) -> Result<(&str, &str), ConfigError> {
    let Some(eq) = line.find('=') else {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        });
    };
    Ok((line[..eq].trim(), line[eq + 1..].trim()))
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{v}`"),
        })?;
    // The allowlist never needs escapes beyond `\"` and `\\`.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let cfg = parse(
            "# vetted exceptions\n\
             [[allow]]\n\
             rule = \"D002\"\n\
             path = \"crates/core/src/twostage.rs\"\n\
             line = 206\n\
             reason = \"train-time metadata only\"\n\
             \n\
             [[allow]]\n\
             rule = \"D001\"\n\
             path = \"crates/mlkit/src/\"  # prefix\n\
             reason = \"keys sorted on output\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].line, Some(206));
        assert!(cfg.allows[0].covers("D002", "crates/core/src/twostage.rs", 206));
        assert!(!cfg.allows[0].covers("D002", "crates/core/src/twostage.rs", 207));
        assert!(cfg.allows[1].covers("D001", "crates/mlkit/src/gbdt.rs", 1));
        assert!(!cfg.allows[1].covers("D001", "crates/mlkit/src2/gbdt.rs", 1));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = parse("[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let err =
            parse("[[allow]]\nrule = \"D099\"\npath = \"x.rs\"\nreason = \"r\"\n").unwrap_err();
        assert!(err.message.contains("unknown rule"));
    }

    #[test]
    fn unknown_key_rejected() {
        let err = parse("[[allow]]\nrulez = \"D001\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn prefix_requires_separator() {
        let cfg = parse("[[allow]]\nrule = \"D004\"\npath = \"crates/core/\"\nreason = \"r\"\n")
            .expect("parses");
        assert!(cfg.allows[0].covers("D004", "crates/core/src/lib.rs", 9));
        assert!(!cfg.allows[0].covers("D004", "crates/core2/src/lib.rs", 9));
    }
}
