//! Diagnostic model and the two output renderers (rustc-style text and
//! machine-readable JSON).

use std::fmt::Write as _;

/// Severity of a diagnostic. Only `Error` diagnostics fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only; never affects the exit code.
    Warning,
    /// A rule violation; fails the run unless waived.
    Error,
}

impl Severity {
    /// Lowercase label used in both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001`..`D008`, or meta ids `D000`, `W001`..`W003`).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the offending token (the anchor).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Last line of the offending *expression* (≥ `line`): a
    /// multi-line `.expect(\n"…")` call spans from the method token to
    /// its closing paren, and an inline waiver anywhere in that span
    /// covers the diagnostic.
    pub end_line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to waive it).
    pub help: String,
    /// Set when an inline waiver or a `detlint.toml` allow entry covers
    /// this diagnostic; waived diagnostics never affect the exit code.
    pub waived: bool,
    /// The written justification attached to the waiver, when waived.
    pub waive_reason: Option<String>,
}

impl Diagnostic {
    /// True when this diagnostic should fail the run.
    pub fn is_blocking(&self) -> bool {
        self.severity == Severity::Error && !self.waived
    }

    /// Sort key: position first so output reads like a compiler's.
    fn key(&self) -> (&str, u32, u32, &str) {
        (&self.path, self.line, self.col, self.rule)
    }
}

/// Sorts diagnostics into deterministic reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.key().cmp(&b.key()));
}

/// Renders one diagnostic in rustc style.
pub fn render_text(d: &Diagnostic) -> String {
    let mut out = String::new();
    let waived = if d.waived { " (waived)" } else { "" };
    let _ = writeln!(
        out,
        "{}[{}]{}: {}",
        d.severity.label(),
        d.rule,
        waived,
        d.message
    );
    let _ = writeln!(out, "  --> {}:{}:{}", d.path, d.line, d.col);
    if !d.help.is_empty() {
        let _ = writeln!(out, "   = help: {}", d.help);
    }
    if let Some(reason) = &d.waive_reason {
        let _ = writeln!(out, "   = waived: {reason}");
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a single JSON object:
/// `{"version":1,"diagnostics":[...],"summary":{...}}`.
///
/// Emitted by hand (the tool itself has no dependencies); the format is
/// locked down by a round-trip test against the vendored `serde_json`.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\"version\":1,\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\
             \"end_line\":{},\"message\":\"{}\",\"help\":\"{}\",\"waived\":{}",
            json_escape(d.rule),
            d.severity.label(),
            json_escape(&d.path),
            d.line,
            d.col,
            d.end_line,
            json_escape(&d.message),
            json_escape(&d.help),
            d.waived,
        );
        if let Some(reason) = &d.waive_reason {
            let _ = write!(out, ",\"waive_reason\":\"{}\"", json_escape(reason));
        }
        out.push('}');
    }
    let errors = diags.iter().filter(|d| d.is_blocking()).count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning && !d.waived)
        .count();
    let waived = diags.iter().filter(|d| d.waived).count();
    let _ = write!(
        out,
        "],\"summary\":{{\"files_scanned\":{files_scanned},\"errors\":{errors},\
         \"warnings\":{warnings},\"waived\":{waived}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "D001",
            severity: Severity::Error,
            path: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            end_line: 3,
            message: "order-nondeterministic `HashMap`".into(),
            help: "use `BTreeMap`".into(),
            waived: false,
            waive_reason: None,
        }
    }

    #[test]
    fn text_render_has_location() {
        let t = render_text(&sample());
        assert!(t.contains("error[D001]"));
        assert!(t.contains("crates/core/src/x.rs:3:7"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_summary_counts() {
        let mut w = sample();
        w.waived = true;
        w.waive_reason = Some("vetted".into());
        let j = render_json(&[sample(), w], 2);
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"waived\":1"));
        assert!(j.contains("\"files_scanned\":2"));
    }

    #[test]
    fn sort_orders_by_position() {
        let mut a = sample();
        a.line = 10;
        let b = sample();
        let mut v = vec![a, b];
        sort(&mut v);
        assert_eq!(v[0].line, 3);
    }
}
