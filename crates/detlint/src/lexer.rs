//! A hand-rolled Rust lexer, just precise enough for lint rules.
//!
//! The goal is not full fidelity with `rustc`'s lexer but *no false
//! positives from non-code text*: identifiers inside string literals,
//! comments, and doc comments must never reach a rule. The lexer is
//! infallible by design — malformed input (e.g. an unterminated string)
//! degrades to a best-effort token stream rather than an error, because
//! a linter that dies on weird-but-compiling code is worse than one
//! that occasionally sees one odd token.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime such as `'a` (also `'_`).
    Lifetime,
    /// Numeric literal (integers and floats, loosely tokenized).
    Number,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation character.
    Punct,
    /// Non-doc line comment `// …` (text includes the slashes).
    LineComment,
    /// Non-doc block comment `/* … */`.
    BlockComment,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for any comment kind (line, block, or doc).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        )
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' || (c == '\r' && self.peek(0) != Some('\n')) {
            // LF and CRLF end the line on the LF; a bare CR (classic
            // Mac checkout) must end it too, or every diagnostic below
            // that point lands on the wrong line.
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds, appending to `buf`.
    fn take_while(&mut self, buf: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            buf.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src` into a flat stream, comments included.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let tok = if c == '/' && lx.peek(1) == Some('/') {
            lex_line_comment(&mut lx)
        } else if c == '/' && lx.peek(1) == Some('*') {
            lex_block_comment(&mut lx)
        } else if is_raw_string_start(&lx) {
            lex_string_like(&mut lx)
        } else if is_ident_start(c) {
            lex_ident(&mut lx)
        } else if c.is_ascii_digit() {
            lex_number(&mut lx)
        } else if c == '"' {
            lex_quoted(&mut lx, TokKind::Str)
        } else if c == '\'' {
            lex_tick(&mut lx)
        } else {
            let mut text = String::new();
            if let Some(p) = lx.bump() {
                text.push(p);
            }
            (TokKind::Punct, text)
        };
        toks.push(Tok {
            kind: tok.0,
            text: tok.1,
            line,
            col,
        });
    }
    toks
}

/// True when the cursor sits on a raw/byte/C string prefix such as
/// `r"`, `r#"`, `br"`, `b"`, or `c"` (but not a raw identifier `r#ident`).
fn is_raw_string_start(lx: &Lexer) -> bool {
    let c0 = match lx.peek(0) {
        Some(c) => c,
        None => return false,
    };
    if !matches!(c0, 'r' | 'b' | 'c') {
        return false;
    }
    // Scan past an optional second prefix letter (`br`, `cr`) and any
    // number of `#` marks; a string starts only if a quote follows.
    let mut k = 1;
    if c0 == 'b' || c0 == 'c' {
        if lx.peek(k) == Some('r') {
            k += 1;
        } else {
            return lx.peek(k) == Some('"') || (c0 == 'b' && lx.peek(k) == Some('\''));
        }
    }
    let mut hashes = 0;
    while lx.peek(k) == Some('#') {
        k += 1;
        hashes += 1;
        if hashes > 64 {
            return false;
        }
    }
    lx.peek(k) == Some('"')
}

/// Lexes a raw/byte/C string (cursor on the prefix letter) or a byte char.
fn lex_string_like(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    // Consume prefix letters.
    while matches!(lx.peek(0), Some('r' | 'b' | 'c')) {
        if let Some(c) = lx.bump() {
            text.push(c);
        }
    }
    if lx.peek(0) == Some('\'') {
        // Byte char literal b'x'.
        let (_, rest) = lex_tick(lx);
        text.push_str(&rest);
        return (TokKind::Char, text);
    }
    let mut hashes = 0usize;
    while lx.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        lx.bump();
    }
    if lx.peek(0) != Some('"') {
        // Not actually a string (e.g. `r#ident` with hashes consumed);
        // fall through to an identifier continuation.
        lx.take_while(&mut text, is_ident_continue);
        return (TokKind::Ident, text);
    }
    text.push('"');
    lx.bump();
    if hashes == 0 && text.starts_with(['b', 'c']) && !text.contains('r') {
        // Escaped (non-raw) byte/C string: delegate to escape-aware scan.
        let (_, rest) = scan_escaped_until(lx, '"');
        text.push_str(&rest);
        return (TokKind::Str, text);
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    loop {
        let c = match lx.bump() {
            Some(c) => c,
            None => return (TokKind::Str, text),
        };
        text.push(c);
        if c == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if lx.peek(k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    if let Some(h) = lx.bump() {
                        text.push(h);
                    }
                }
                return (TokKind::Str, text);
            }
        }
    }
}

/// Scans an escape-aware literal body up to the closing `delim`
/// (cursor just past the opening delimiter). Returns the consumed text
/// including the closing delimiter.
fn scan_escaped_until(lx: &mut Lexer, delim: char) -> (TokKind, String) {
    let mut text = String::new();
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = lx.bump() {
                text.push(e);
            }
            continue;
        }
        if c == delim {
            break;
        }
    }
    (TokKind::Str, text)
}

fn lex_quoted(lx: &mut Lexer, kind: TokKind) -> (TokKind, String) {
    let mut text = String::new();
    if let Some(q) = lx.bump() {
        text.push(q);
    }
    let (_, rest) = scan_escaped_until(lx, '"');
    text.push_str(&rest);
    (kind, text)
}

/// Disambiguates lifetimes (`'a`) from char literals (`'a'`).
fn lex_tick(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    if let Some(t) = lx.bump() {
        text.push(t);
    }
    let next = lx.peek(0);
    let after = lx.peek(1);
    let is_lifetime = match next {
        Some(c) if is_ident_start(c) => after != Some('\''),
        _ => false,
    };
    if is_lifetime {
        lx.take_while(&mut text, is_ident_continue);
        return (TokKind::Lifetime, text);
    }
    // Char literal: scan to the closing tick, honoring escapes. Bound
    // the scan so a stray tick cannot swallow the rest of the file.
    let mut budget = 64usize;
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = lx.bump() {
                text.push(e);
            }
        } else if c == '\'' {
            break;
        }
        budget -= 1;
        if budget == 0 {
            break;
        }
    }
    (TokKind::Char, text)
}

fn lex_ident(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    lx.take_while(&mut text, is_ident_continue);
    (TokKind::Ident, text)
}

fn lex_number(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    lx.take_while(&mut text, is_ident_continue);
    // Consume a fractional part, but never a `..` range operator.
    if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        lx.bump();
        lx.take_while(&mut text, is_ident_continue);
    }
    (TokKind::Number, text)
}

fn lex_line_comment(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    // Stop before the CR of a CRLF ending so the comment text (which
    // waiver parsing reads) is identical across checkout line endings.
    lx.take_while(&mut text, |c| c != '\n' && c != '\r');
    let kind = if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!")
    {
        TokKind::DocComment
    } else {
        TokKind::LineComment
    };
    (kind, text)
}

fn lex_block_comment(lx: &mut Lexer) -> (TokKind, String) {
    let mut text = String::new();
    // Consume `/*`.
    for _ in 0..2 {
        if let Some(c) = lx.bump() {
            text.push(c);
        }
    }
    let mut depth = 1usize;
    while depth > 0 {
        match lx.bump() {
            Some('/') if lx.peek(0) == Some('*') => {
                text.push('/');
                if let Some(c) = lx.bump() {
                    text.push(c);
                }
                depth += 1;
            }
            Some('*') if lx.peek(0) == Some('/') => {
                text.push('*');
                if let Some(c) = lx.bump() {
                    text.push(c);
                }
                depth -= 1;
            }
            Some(c) => text.push(c),
            None => break,
        }
    }
    let kind = if (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
        || text.starts_with("/*!")
    {
        TokKind::DocComment
    } else {
        TokKind::BlockComment
    };
    (kind, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = foo.bar();");
        assert_eq!(ts[0], (TokKind::Ident, "let".into()));
        assert_eq!(ts[3], (TokKind::Ident, "foo".into()));
        assert_eq!(ts[4], (TokKind::Punct, ".".into()));
        assert_eq!(ts[5], (TokKind::Ident, "bar".into()));
    }

    #[test]
    fn strings_hide_identifiers() {
        let ts = kinds(r#"let s = "HashMap::new() and .unwrap()";"#);
        assert!(ts
            .iter()
            .all(|t| t.1 != "HashMap" || t.0 == TokKind::Str || t.1.contains('"')));
        assert!(!ts.iter().any(|t| t.0 == TokKind::Ident && t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ts = kinds(r##"let a = r#"thread_rng"#; let r#type = 1;"##);
        assert!(!ts
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "thread_rng"));
        assert!(ts
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1.contains("type")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_classified() {
        let ts = kinds("// plain\n/// doc\n//! inner\n/* block */\n/** docblock */ code");
        let cs: Vec<TokKind> = ts.iter().map(|t| t.0).collect();
        assert_eq!(
            &cs[..5],
            &[
                TokKind::LineComment,
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::BlockComment,
                TokKind::DocComment,
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let ts = kinds("/* outer /* inner */ still */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let ts = kinds("for i in 0..10 { let f = 1.5; }");
        assert!(ts.iter().any(|t| t.0 == TokKind::Number && t.1 == "0"));
        assert!(ts.iter().any(|t| t.0 == TokKind::Number && t.1 == "1.5"));
    }

    #[test]
    fn positions_are_one_based() {
        let ts = lex("a\n  b");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn crlf_and_bare_cr_count_lines_like_lf() {
        // The same three tokens under LF, CRLF, and bare-CR endings must
        // carry identical positions — diagnostics stay byte-accurate on
        // foreign checkouts.
        let lf = lex("a\n b\n  c");
        for src in ["a\r\n b\r\n  c", "a\r b\r  c", "a\r\n b\r  c"] {
            let ts = lex(src);
            assert_eq!(ts.len(), lf.len(), "{src:?}");
            for (t, want) in ts.iter().zip(&lf) {
                assert_eq!((t.line, t.col), (want.line, want.col), "{src:?}");
                assert_eq!(t.text, want.text);
            }
        }
    }

    #[test]
    fn crlf_line_comment_excludes_carriage_return() {
        let ts = lex("// detlint: allow(D004) reason=ok\r\nfn f() {}");
        assert_eq!(ts[0].kind, TokKind::LineComment);
        assert!(!ts[0].text.contains('\r'), "comment text must be CR-free");
        assert_eq!(ts[1].line, 2, "code after CRLF comment is on line 2");
    }

    #[test]
    fn unterminated_string_degrades() {
        let ts = kinds("let s = \"oops");
        assert_eq!(ts.last().map(|t| t.0), Some(TokKind::Str));
    }
}
