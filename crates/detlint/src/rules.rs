//! The determinism & numeric-safety rules (D001–D008), profile
//! classification, test-region detection, and inline waivers.
//!
//! Everything here is token-level analysis: no type information, no
//! name resolution. Each rule is deliberately written so that its
//! false-positive escape hatch is an *explicit, reasoned* waiver rather
//! than silence.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// Static description of one rule, for `detlint rules` and help text.
pub struct RuleInfo {
    /// Rule id, e.g. `"D001"`.
    pub id: &'static str,
    /// One-line summary of what the rule forbids.
    pub summary: &'static str,
    /// The fix hint attached to every diagnostic of this rule.
    pub help: &'static str,
}

/// All enforced rules, in id order. D001–D005 are per-file token rules;
/// D006–D008 are interprocedural hot-path rules (see `effects`).
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        id: "D001",
        summary: "order-nondeterministic `HashMap`/`HashSet` in a deterministic crate",
        help: "use `BTreeMap`/`BTreeSet` (or collect-and-sort), or waive with \
               `// detlint: allow(D001) reason=...`",
    },
    RuleInfo {
        id: "D002",
        summary: "wall-clock read (`Instant::now`/`SystemTime::now`/`UNIX_EPOCH`) outside \
                  `crates/bench`",
        help: "results must not depend on wall time; measure in `crates/bench`, or waive with \
               `// detlint: allow(D002) reason=...`",
    },
    RuleInfo {
        id: "D003",
        // detlint: allow(D003) reason=rule summary text names the banned device path; not an entropy read
        summary: "unseeded entropy (`thread_rng`/`from_entropy`/`OsRng`/`/dev/urandom`)",
        help: "all randomness must flow through the seeded `titan_sim::rng` streams",
    },
    RuleInfo {
        id: "D004",
        summary: "`unwrap()`/`expect()`/`panic!` in library non-test code",
        help: "propagate with `?` and the crate's error type, or waive a proven invariant with \
               `// detlint: allow(D004) reason=...`",
    },
    RuleInfo {
        id: "D005",
        summary: "iterator float reduction chained onto a `par_map` result",
        help: "reduce parallel results with the fixed-order helpers `parkit::sum_in_order` / \
               `parkit::fold_in_order`",
    },
    RuleInfo {
        id: "D006",
        summary: "a declared hot-path root can reach a panic site (indexing, unwrap-family, \
                  integer division, assert!)",
        help: "make the access infallible (iterators, `.get()`, pre-validated bounds) or waive \
               the proven invariant with `// detlint: allow(D006) reason=...`",
    },
    RuleInfo {
        id: "D007",
        summary: "a declared hot-path root can reach a steady-state allocation site",
        help: "hoist the allocation out of the loop into pre-sized buffers, or waive \
               warmup-only growth with `// detlint: allow(D007) reason=...`",
    },
    RuleInfo {
        id: "D008",
        summary: "a nondeterminism source (entropy, clock, thread id, pointer-as-int) flows \
                  into a declared hot-path root",
        help: "route randomness through seeded streams and remove clock/thread-id reads, or \
               waive with `// detlint: allow(D008) reason=...`",
    },
];

/// Looks up the canonical help text for a rule id.
fn rule_help(id: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.help)
        .unwrap_or("")
}

/// Which rules apply to a file (or to a token region within a file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// D001: no order-nondeterministic collections.
    pub d001: bool,
    /// D002: no wall-clock reads.
    pub d002: bool,
    /// D003: no unseeded entropy.
    pub d003: bool,
    /// D004: no unwrap/expect/panic in library code.
    pub d004: bool,
    /// D005: no iterator float reductions over `par_map` output.
    pub d005: bool,
}

impl RuleSet {
    /// Test code and `examples/`: determinism rules only (D001, D003).
    pub const RELAXED: RuleSet = RuleSet {
        d001: true,
        d002: false,
        d003: true,
        d004: false,
        d005: false,
    };

    /// `crates/bench`: timing is its whole point; only entropy is policed.
    pub const BENCH: RuleSet = RuleSet {
        d001: false,
        d002: false,
        d003: true,
        d004: false,
        d005: false,
    };

    /// Library sources: everything on; D001 per the crate list.
    pub fn strict(d001: bool) -> RuleSet {
        RuleSet {
            d001,
            d002: true,
            d003: true,
            d004: true,
            d005: true,
        }
    }
}

/// Crates whose iteration order feeds model training or trace output,
/// and therefore must not use hash-ordered collections (rule D001).
/// `detlint` polices itself so its diagnostics order is reproducible.
const D001_CRATES: [&str; 9] = [
    "crates/core/",
    "crates/mlkit/",
    "crates/titan-sim/",
    "crates/parkit/",
    "crates/detlint/",
    "crates/obskit/",
    "crates/streamd/",
    "crates/sbed/",
    "crates/driftd/",
];

/// Maps a workspace-relative path to the rules that apply to it.
/// Returns `None` for files detlint does not police at all.
pub fn classify(rel_path: &str) -> Option<RuleSet> {
    let p = rel_path;
    if !p.ends_with(".rs")
        || p.starts_with("vendor/")
        || p.starts_with("target/")
        || p.contains("/fixtures/")
    {
        return None;
    }
    if p.starts_with("crates/bench/") {
        return Some(RuleSet::BENCH);
    }
    let in_dir = |d: &str| p.starts_with(&format!("{d}/")) || p.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("examples") || in_dir("benches") {
        return Some(RuleSet::RELAXED);
    }
    let d001 = D001_CRATES.iter().any(|c| p.starts_with(c));
    Some(RuleSet::strict(d001))
}

/// Byte-free token-span regions of test code: `#[cfg(test)]` items and
/// `#[test]` functions. Indices are into the *code* token slice.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attr(toks, i);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the cfg(test) and the item.
        let mut j = attr_end + 1;
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = scan_attr(toks, j).0 + 1;
        }
        let end = item_end(toks, j);
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

/// Scans an attribute starting at `#`; returns the index of the closing
/// `]` and whether the attribute marks test-only code.
fn scan_attr(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        j += 1;
    }
    // `#[test]` exactly, or `#[cfg(test)]`-style. `not(test)` means the
    // code is *compiled* outside tests, so it stays policed.
    let is_test = match idents.as_slice() {
        ["test"] => true,
        list => list.first() == Some(&"cfg") && list.contains(&"test") && !list.contains(&"not"),
    };
    (j.min(toks.len().saturating_sub(1)), is_test)
}

/// Finds the end of the item starting at `j`: the matching `}` of its
/// first body brace, or a terminating `;` outside parens/brackets.
fn item_end(toks: &[Tok], j: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            return k;
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            return matching_brace(toks, k);
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// An inline waiver parsed from a `// detlint: allow(...)` comment.
#[derive(Debug)]
pub struct InlineWaiver {
    /// Rule ids the waiver covers.
    pub rules: Vec<String>,
    /// The source line the waiver applies to.
    pub target_line: u32,
    /// Where the comment itself sits (for unused-waiver reporting).
    pub at: (u32, u32),
    /// The mandatory justification.
    pub reason: String,
    /// Set once the waiver suppressed at least one diagnostic.
    pub used: bool,
}

/// Extracts inline waivers from comment tokens. Malformed waivers
/// (missing rule list or empty reason) become `D000` diagnostics.
pub fn inline_waivers(
    path: &str,
    all_toks: &[Tok],
    code: &[Tok],
) -> (Vec<InlineWaiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for t in all_toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut push_malformed = |msg: String| {
            diags.push(Diagnostic {
                rule: "D000",
                severity: Severity::Error,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                end_line: t.line,
                message: msg,
                help: "waiver syntax: `// detlint: allow(D00X) reason=why this is sound`"
                    .to_string(),
                waived: false,
                waive_reason: None,
            });
        };
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            push_malformed(format!("malformed detlint waiver `{body}`"));
            continue;
        };
        let (rule_list, tail) = args;
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || !rules.iter().all(|r| RULES.iter().any(|k| k.id == r)) {
            push_malformed(format!("waiver names no known rule: `{body}`"));
            continue;
        }
        let Some(reason) = tail.trim().strip_prefix("reason=").map(str::trim) else {
            push_malformed("waiver missing `reason=` — every waiver must say why".to_string());
            continue;
        };
        if reason.is_empty() {
            push_malformed("waiver has an empty reason".to_string());
            continue;
        }
        // A trailing comment waives its own line; a standalone comment
        // waives the next line that carries code.
        let own_line_has_code = code.iter().any(|c| c.line == t.line && (c.col < t.col));
        let target_line = if own_line_has_code {
            t.line
        } else {
            code.iter()
                .map(|c| c.line)
                .find(|&l| l > t.line)
                .unwrap_or(t.line)
        };
        waivers.push(InlineWaiver {
            rules,
            target_line,
            at: (t.line, t.col),
            reason: reason.to_string(),
            used: false,
        });
    }
    (waivers, diags)
}

fn diag(rule: &'static str, path: &str, t: &Tok, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        end_line: t.line,
        message,
        help: rule_help(rule).to_string(),
        waived: false,
        waive_reason: None,
    }
}

/// Index of the `)` matching the `(` at `open` (or the last token when
/// unbalanced input degrades).
pub(crate) fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Runs all applicable rules over the code tokens of one file.
pub fn run_rules(path: &str, code: &[Tok], rules: RuleSet) -> Vec<Diagnostic> {
    let regions = test_regions(code);
    let in_test = |idx: usize| regions.iter().any(|&(s, e)| idx >= s && idx <= e);
    // Inside test regions only the determinism rules remain active,
    // mirroring the relaxed profile for `tests/` directories.
    let effective = |idx: usize| -> RuleSet {
        if in_test(idx) {
            RuleSet {
                d001: rules.d001 && RuleSet::RELAXED.d001,
                d002: false,
                d003: rules.d003 && RuleSet::RELAXED.d003,
                d004: false,
                d005: false,
            }
        } else {
            rules
        }
    };

    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let r = effective(i);
        if t.kind == TokKind::Ident {
            check_ident(path, code, i, t, r, &mut out);
        } else if t.kind == TokKind::Str && r.d003 {
            // detlint: allow(D003) reason=pattern definitions the rule matches against; not entropy reads
            if t.text.contains("/dev/urandom") || t.text.contains("/dev/random") {
                out.push(diag(
                    "D003",
                    path,
                    t,
                    "reads OS entropy from a device path".to_string(),
                ));
            }
        }
    }
    out
}

fn check_ident(path: &str, code: &[Tok], i: usize, t: &Tok, r: RuleSet, out: &mut Vec<Diagnostic>) {
    let next = code.get(i + 1);
    let prev = i.checked_sub(1).and_then(|p| code.get(p));
    match t.text.as_str() {
        "HashMap" | "HashSet" if r.d001 => {
            out.push(diag(
                "D001",
                path,
                t,
                format!(
                    "order-nondeterministic `{}` in a crate whose iteration order feeds \
                     deterministic output",
                    t.text
                ),
            ));
        }
        // Only the read (`::now`) is a violation; the types are fine.
        "Instant" | "SystemTime"
            if r.d002
                && next.is_some_and(|n| n.is_punct(':'))
                && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && code.get(i + 3).is_some_and(|n| n.is_ident("now")) =>
        {
            out.push(diag(
                "D002",
                path,
                t,
                format!("wall-clock read `{}::now()` outside `crates/bench`", t.text),
            ));
        }
        "UNIX_EPOCH" if r.d002 => {
            out.push(diag(
                "D002",
                path,
                t,
                "wall-clock anchor `UNIX_EPOCH` outside `crates/bench`".to_string(),
            ));
        }
        "thread_rng" | "from_entropy" | "OsRng" | "getrandom" if r.d003 => {
            out.push(diag(
                "D003",
                path,
                t,
                format!("unseeded entropy source `{}`", t.text),
            ));
        }
        "unwrap" | "expect"
            if r.d004
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('(')) =>
        {
            // The call's argument list may span lines (rustfmt splits
            // `.expect(\n"…")`); the diagnostic's span runs to the
            // closing paren so a trailing waiver on any of those lines
            // covers it.
            let close = matching_paren(code, i + 1);
            let mut d = diag(
                "D004",
                path,
                t,
                format!("`{}()` in library non-test code", t.text),
            );
            d.end_line = code[close].line.max(t.line);
            out.push(d);
        }
        "panic" if r.d004 && next.is_some_and(|n| n.is_punct('!')) => {
            let mut d = diag(
                "D004",
                path,
                t,
                "`panic!` in library non-test code".to_string(),
            );
            // `panic!("…",\n args)` spans to its closing delimiter.
            if code.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                let close = matching_paren(code, i + 2);
                d.end_line = code[close].line.max(t.line);
            }
            out.push(d);
        }
        "par_map"
        | "par_map_indexed"
        | "try_par_map"
        | "try_par_map_indexed"
        | "try_par_map_chunked"
            if r.d005 && next.is_some_and(|n| n.is_punct('(')) =>
        {
            check_d005_chain(path, code, i, out);
        }
        _ => {}
    }
}

/// D005: after the closing paren of a `par_map`-family call, flag
/// `.sum` / `.product` / `.fold` chained within the same statement.
/// Reductions *inside* the mapped closure are per-item and fine.
fn check_d005_chain(path: &str, code: &[Tok], call_ident: usize, out: &mut Vec<Diagnostic>) {
    // Find the matching close paren of the call's argument list.
    let open = call_ident + 1;
    let mut depth = 0i32;
    let mut k = open;
    while k < code.len() {
        if code[k].is_punct('(') {
            depth += 1;
        } else if code[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        k += 1;
    }
    // Scan the rest of the statement (bounded, brace-balanced).
    let mut brace = 0i32;
    let limit = (k + 256).min(code.len());
    let mut j = k + 1;
    while j < limit {
        let t = &code[j];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                break;
            }
        } else if t.is_punct(';') && brace == 0 {
            break;
        } else if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "sum" | "product" | "fold")
            && j > 0
            && code[j - 1].is_punct('.')
        {
            out.push(diag(
                "D005",
                path,
                t,
                format!(
                    "iterator `.{}` reduction chained onto a `{}` result — accumulation order \
                     must be pinned",
                    t.text, code[call_ident].text
                ),
            ));
        }
        j += 1;
    }
}

/// Applies inline waivers to diagnostics in place; returns warnings for
/// waivers that suppressed nothing (`W002`).
pub fn apply_inline_waivers(
    path: &str,
    diags: &mut [Diagnostic],
    waivers: &mut [InlineWaiver],
) -> Vec<Diagnostic> {
    for d in diags.iter_mut() {
        if d.waived {
            continue;
        }
        for w in waivers.iter_mut() {
            let in_span = w.target_line >= d.line && w.target_line <= d.end_line;
            if in_span && w.rules.iter().any(|r| r == d.rule) {
                d.waived = true;
                d.waive_reason = Some(w.reason.clone());
                w.used = true;
                break;
            }
        }
    }
    waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| Diagnostic {
            rule: "W002",
            severity: Severity::Warning,
            path: path.to_string(),
            line: w.at.0,
            col: w.at.1,
            end_line: w.at.0,
            message: format!(
                "inline waiver for {} suppresses nothing",
                w.rules.join(", ")
            ),
            help: "remove the stale waiver".to_string(),
            waived: false,
            waive_reason: None,
        })
        .collect()
}

/// A map from rule id to the number of diagnostics per rule — used by
/// the summary line. `BTreeMap` keeps the printout ordered.
pub fn count_by_rule(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in diags.iter().filter(|d| d.is_blocking()) {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_toks(src: &str) -> Vec<Tok> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let rules = classify(path).expect("policed path");
        run_rules(path, &code_toks(src), rules)
    }

    #[test]
    fn fastpath_surface_is_fully_policed() {
        // The compiled-inference layer must stay under the strict
        // ruleset with D001 on: its node tables and arena chains feed
        // bit-exactness guarantees, so hash-ordered iteration or a
        // stray unwrap there is a determinism bug, not a style nit.
        for path in [
            "crates/mlkit/src/fastpath.rs",
            "crates/mlkit/src/tree.rs",
            "crates/streamd/src/serve.rs",
            "crates/streamd/src/artifact.rs",
            "crates/core/src/history.rs",
        ] {
            let rules = classify(path).expect("fastpath module is policed");
            assert_eq!(rules, RuleSet::strict(true), "{path}");
        }
        // The bench emitting BENCH_fastpath.json times wall-clock on
        // purpose; the differential suite is test code.
        assert_eq!(
            classify("crates/bench/benches/fastpath.rs"),
            Some(RuleSet::BENCH)
        );
        assert_eq!(
            classify("tests/fastpath_equivalence.rs"),
            Some(RuleSet::RELAXED)
        );
    }

    #[test]
    fn d001_flags_hashmap_in_core() {
        let ds = check(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(ds.iter().filter(|d| d.rule == "D001").count(), 3);
    }

    #[test]
    fn d001_ignores_tscast_and_strings() {
        assert!(check("crates/tscast/src/x.rs", "use std::collections::HashMap;").is_empty());
        assert!(check("crates/core/src/x.rs", "fn f() { let s = \"HashMap\"; }").is_empty());
    }

    #[test]
    fn d002_flags_now_but_not_duration() {
        let ds = check(
            "crates/core/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "D002");
        assert!(check("crates/core/src/x.rs", "use std::time::Duration;").is_empty());
    }

    #[test]
    fn d002_allowed_in_bench() {
        assert!(check(
            "crates/bench/src/lib.rs",
            "fn f() { let t = std::time::Instant::now(); }"
        )
        .is_empty());
    }

    #[test]
    fn d003_flags_entropy_everywhere() {
        for path in [
            "crates/core/src/x.rs",
            "tests/x.rs",
            "crates/bench/src/lib.rs",
        ] {
            let ds = check(path, "fn f() { let r = rand::thread_rng(); }");
            assert_eq!(ds.len(), 1, "{path}");
            assert_eq!(ds[0].rule, "D003");
        }
    }

    #[test]
    fn d004_flags_unwrap_expect_panic() {
        let ds = check(
            "crates/mlkit/src/x.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }",
        );
        assert_eq!(ds.iter().filter(|d| d.rule == "D004").count(), 3);
    }

    #[test]
    fn d004_ignores_unwrap_or_and_tests() {
        assert!(check("crates/mlkit/src/x.rs", "fn f() { x.unwrap_or(0); }").is_empty());
        let ds = check(
            "crates/mlkit/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}",
        );
        assert!(ds.is_empty());
        let ds = check("tests/integration.rs", "fn f() { x.unwrap(); }");
        assert!(ds.is_empty());
    }

    #[test]
    fn cfg_not_test_stays_policed() {
        let ds = check(
            "crates/mlkit/src/x.rs",
            "#[cfg(not(test))]\nfn g() { x.unwrap(); }",
        );
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn d001_still_applies_inside_test_modules() {
        let ds = check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }",
        );
        assert_eq!(ds.iter().filter(|d| d.rule == "D001").count(), 1);
    }

    #[test]
    fn d005_flags_chained_sum_not_inner_sum() {
        let flagged = check(
            "crates/core/src/x.rs",
            "fn f() { let s: f64 = par_map(t, xs, |x| x * 2.0).iter().sum(); }",
        );
        assert_eq!(flagged.iter().filter(|d| d.rule == "D005").count(), 1);
        let inner = check(
            "crates/core/src/x.rs",
            "fn f() { let v = par_map(t, xs, |x| x.iter().sum::<f64>()); }",
        );
        assert!(inner.iter().all(|d| d.rule != "D005"), "{inner:?}");
    }

    #[test]
    fn d004_multiline_expect_is_flagged_with_span() {
        let ds = check(
            "crates/mlkit/src/x.rs",
            "fn f() {\n    x\n        .expect(\n            \"msg\",\n        );\n}",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "D004");
        assert_eq!(ds[0].line, 3, "anchored at the method token");
        assert_eq!(ds[0].end_line, 5, "spans to the closing paren");
    }

    #[test]
    fn d004_waiver_on_closing_paren_line_covers_multiline_call() {
        let path = "crates/core/src/x.rs";
        let src = "fn f() {\n    x.expect(\n        \"msg\",\n    ); \
                   // detlint: allow(D004) reason=proven invariant\n}";
        let all = lex(src);
        let code: Vec<Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();
        let mut ds = run_rules(path, &code, classify(path).expect("policed"));
        let (mut ws, _) = inline_waivers(path, &all, &code);
        let unused = apply_inline_waivers(path, &mut ds, &mut ws);
        assert!(unused.is_empty(), "trailing waiver must bind to the span");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].waived);
    }

    #[test]
    fn inline_waiver_suppresses_and_tracks_use() {
        let path = "crates/core/src/x.rs";
        let src =
            "fn f() {\n    // detlint: allow(D004) reason=proven invariant\n    x.unwrap();\n}";
        let all = lex(src);
        let code: Vec<Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();
        let rules = classify(path).expect("policed");
        let mut ds = run_rules(path, &code, rules);
        let (mut ws, malformed) = inline_waivers(path, &all, &code);
        assert!(malformed.is_empty());
        let unused = apply_inline_waivers(path, &mut ds, &mut ws);
        assert!(unused.is_empty());
        assert_eq!(ds.len(), 1);
        assert!(ds[0].waived);
        assert_eq!(ds[0].waive_reason.as_deref(), Some("proven invariant"));
    }

    #[test]
    fn malformed_waiver_is_d000() {
        let src = "// detlint: allow(D004)\nfn f() {}";
        let all = lex(src);
        let code: Vec<Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();
        let (ws, malformed) = inline_waivers("x.rs", &all, &code);
        assert!(ws.is_empty());
        assert_eq!(malformed.len(), 1);
        assert_eq!(malformed[0].rule, "D000");
    }

    #[test]
    fn unused_waiver_warns() {
        let path = "crates/core/src/x.rs";
        let src = "// detlint: allow(D001) reason=stale\nfn f() {}";
        let all = lex(src);
        let code: Vec<Tok> = all.iter().filter(|t| !t.is_comment()).cloned().collect();
        let mut ds = run_rules(path, &code, classify(path).expect("policed"));
        let (mut ws, _) = inline_waivers(path, &all, &code);
        let unused = apply_inline_waivers(path, &mut ds, &mut ws);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "W002");
    }
}
