//! Deterministic workspace traversal.
//!
//! `read_dir` order is OS-dependent; detlint's own output must not be,
//! so every directory listing is sorted before descent.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, vendored deps, VCS
/// metadata, lint self-test corpora, and experiment artifacts.
const SKIP_DIRS: [&str; 6] = [
    "target",
    "vendor",
    ".git",
    "fixtures",
    "results",
    "node_modules",
];

/// Collects every `.rs` file under `root`, as sorted workspace-relative
/// paths with forward slashes.
pub fn rust_sources(root: &Path) -> Result<Vec<String>, std::io::Error> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            entries.push(entry?.path());
        }
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_crate_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_sources(root).expect("walk");
        assert!(files.iter().any(|f| f.ends_with("src/walk.rs")));
        // fixtures/ is excluded from traversal.
        assert!(files.iter().all(|f| !f.contains("fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
