//! The incremental feature engine.
//!
//! Maintains, event by event, exactly the per-(app, node) state the batch
//! [`sbepred::features::FeatureExtractor`] derives from a whole trace:
//!
//! * an [`IncrementalHistory`] of job-boundary SBE snapshot deltas, and
//! * the most recent application to *start* on each node (the
//!   previous-app feature).
//!
//! Parity argument: the batch extractor answers history queries at a
//! sample's start minute `t` with strict `< t` visibility, and resolves
//! the previous app by binary search over runs with `start < t`. The
//! driver feeds this engine events in minute order and defers a minute's
//! own prev-app updates until the minute ends ([`StreamFeatureEngine::end_minute`]),
//! so at the moment a launch at `t` is scored the engine holds *exactly*
//! the `< t` state — integer-identical counts, hence (through the shared
//! [`sbepred::features::assemble_row`]) bit-identical feature rows.

use crate::Result;
use sbepred::features::{FeatureSpec, HistCounts};
use sbepred::history::IncrementalHistory;
use std::collections::BTreeMap;
use titan_sim::apps::AppId;
use titan_sim::schedule::ApRun;
use titan_sim::topology::NodeId;

/// Streaming per-(app, node) sliding-window state.
#[derive(Debug, Clone, Default)]
pub struct StreamFeatureEngine {
    history: IncrementalHistory,
    /// Per node: `(start_min, app)` of the most recent run to start.
    node_last_app: BTreeMap<u32, (u64, u32)>,
    /// Prev-app updates from the current minute, applied at
    /// [`StreamFeatureEngine::end_minute`] so same-minute launches never
    /// observe each other.
    pending_prev: Vec<(u32, u64, u32)>,
}

impl StreamFeatureEngine {
    /// An empty engine at minute 0.
    pub fn new() -> StreamFeatureEngine {
        StreamFeatureEngine::default()
    }

    /// Records a launch: each allocated node's previous-app state will
    /// point at this run once the current minute ends.
    pub fn observe_launch(&mut self, run: &ApRun) {
        self.observe_launch_parts(run.start_min, run.app_id.0, &run.nodes);
    }

    /// The step-style form of [`StreamFeatureEngine::observe_launch`]:
    /// feeds one launch from its bare facts (start minute, application,
    /// allocated nodes) without requiring an [`ApRun`] — the entry point
    /// network feeders (`sbed`) use, where launches arrive as decoded
    /// wire frames rather than trace records.
    pub fn observe_launch_parts(&mut self, start_min: u64, app: u32, nodes: &[NodeId]) {
        for &node in nodes {
            self.pending_prev.push((node.0, start_min, app));
        }
    }

    /// Ingests a job-boundary SBE snapshot delta visible at `minute`.
    ///
    /// # Errors
    ///
    /// Propagates [`IncrementalHistory::ingest`] ordering violations.
    pub fn observe_sbe(&mut self, minute: u64, node: NodeId, app: AppId, count: u32) -> Result<()> {
        self.history.ingest(minute, node, app, count)?;
        Ok(())
    }

    /// Applies the minute's deferred prev-app updates. The driver calls
    /// this when the stream moves past a minute boundary.
    pub fn end_minute(&mut self) {
        for (node, start, app) in self.pending_prev.drain(..) {
            // The batch extractor sorts `(start, app)` tuples and takes
            // the last one before the query minute; keeping the max pair
            // reproduces its same-minute tie-break exactly.
            let cand = (start, app);
            let cur = self.node_last_app.entry(node).or_insert(cand);
            if *cur < cand {
                *cur = cand;
            }
        }
    }

    /// The most recent application to start on `node` strictly before
    /// the current minute.
    pub fn previous_app(&self, node: u32) -> Option<u32> {
        self.node_last_app.get(&node).map(|&(_, app)| app)
    }

    /// The incremental SBE-history index.
    pub fn history(&self) -> &IncrementalHistory {
        &self.history
    }

    /// The [`HistCounts`] of a launch of `app` on `node` at `start`,
    /// allocated `alloc_nodes` — queried against the current (strictly
    /// pre-`start`) history state.
    pub fn hist_counts(
        &self,
        spec: &FeatureSpec,
        node: NodeId,
        app: AppId,
        alloc_nodes: &[NodeId],
        start: u64,
    ) -> HistCounts {
        HistCounts::at(&self.history, spec, node, app, alloc_nodes, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_sim::schedule::{ApRunId, JobId};

    fn run(id: u32, app: u32, start: u64, nodes: &[u32]) -> ApRun {
        ApRun {
            id: ApRunId(id),
            job_id: JobId(id),
            app_id: AppId(app),
            start_min: start,
            end_min: start + 10,
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn prev_app_defers_to_minute_end() {
        let mut eng = StreamFeatureEngine::new();
        eng.observe_launch(&run(1, 42, 5, &[0, 1]));
        // Same minute: launches must not see each other.
        assert_eq!(eng.previous_app(0), None);
        eng.end_minute();
        assert_eq!(eng.previous_app(0), Some(42));
        assert_eq!(eng.previous_app(1), Some(42));
        assert_eq!(eng.previous_app(2), None);
        // A later run supersedes.
        eng.observe_launch(&run(2, 7, 9, &[1]));
        assert_eq!(eng.previous_app(1), Some(42));
        eng.end_minute();
        assert_eq!(eng.previous_app(1), Some(7));
        assert_eq!(eng.previous_app(0), Some(42));
    }

    #[test]
    fn observe_launch_parts_matches_observe_launch() {
        let r = run(1, 42, 5, &[0, 1, 3]);
        let mut a = StreamFeatureEngine::new();
        let mut b = StreamFeatureEngine::new();
        a.observe_launch(&r);
        b.observe_launch_parts(r.start_min, r.app_id.0, &r.nodes);
        a.end_minute();
        b.end_minute();
        for n in [0u32, 1, 2, 3] {
            assert_eq!(a.previous_app(n), b.previous_app(n));
        }
    }

    #[test]
    fn hist_counts_respect_strict_visibility() {
        let mut eng = StreamFeatureEngine::new();
        eng.observe_sbe(100, NodeId(3), AppId(9), 4).unwrap();
        let spec = FeatureSpec::only_hist();
        // A launch at minute 100 must not see the event at 100.
        let at100 = eng.hist_counts(&spec, NodeId(3), AppId(9), &[NodeId(3)], 100);
        assert_eq!(at100.node_24h, 0);
        let at101 = eng.hist_counts(&spec, NodeId(3), AppId(9), &[NodeId(3)], 101);
        assert_eq!(at101.node_24h, 4);
        assert_eq!(at101.app_24h, 4);
        assert_eq!(at101.alloc_24h, 4);
        assert_eq!(at101.machine_24h, 4);
    }
}
