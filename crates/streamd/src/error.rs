use std::fmt;

/// Errors produced by the streaming inference subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// An underlying ML error (includes every artifact-envelope failure:
    /// corruption, version/kind/schema mismatches).
    Ml(mlkit::MlError),
    /// An underlying prediction-pipeline error.
    Pred(sbepred::PredError),
    /// An underlying simulator error.
    Sim(titan_sim::SimError),
    /// An artifact payload failed to decode after its envelope verified.
    Payload {
        /// Decoder diagnostic.
        reason: String,
    },
    /// Reading or writing an artifact or log file failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The serve configuration is unusable.
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Ml(e) => write!(f, "ml error: {e}"),
            StreamError::Pred(e) => write!(f, "pipeline error: {e}"),
            StreamError::Sim(e) => write!(f, "simulator error: {e}"),
            StreamError::Payload { reason } => {
                write!(f, "artifact payload undecodable: {reason}")
            }
            StreamError::Io { path, source } => {
                write!(f, "io error on `{path}`: {source}")
            }
            StreamError::InvalidConfig { reason } => {
                write!(f, "invalid serve config: {reason}")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Ml(e) => Some(e),
            StreamError::Pred(e) => Some(e),
            StreamError::Sim(e) => Some(e),
            StreamError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<mlkit::MlError> for StreamError {
    fn from(e: mlkit::MlError) -> StreamError {
        StreamError::Ml(e)
    }
}

impl From<sbepred::PredError> for StreamError {
    fn from(e: sbepred::PredError) -> StreamError {
        StreamError::Pred(e)
    }
}

impl From<titan_sim::SimError> for StreamError {
    fn from(e: titan_sim::SimError) -> StreamError {
        StreamError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_sources_and_displays() {
        let e = StreamError::from(mlkit::MlError::NotFitted);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ml error"));
        let e = StreamError::InvalidConfig {
            reason: "batch capacity 0".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("batch capacity 0"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
