//! The online scoring loop.
//!
//! [`serve`] replays a trace's [`EventStream`] against a shipped
//! [`PipelineArtifact`]: launches inside the scoring window become score
//! requests, requests batch up to a bounded capacity (or a maximum
//! queueing delay in trace minutes), and each flush runs stage 1
//! (offender-set membership), feature assembly + standardisation across
//! parkit workers, and the stage-2 classifier. Predicted-SBE launches are
//! emitted to an [`AlertSink`] as mitigation decisions.
//!
//! Determinism: every obskit measurement is recorded from the driver
//! thread with values that are pure functions of the trace and config
//! (batch sizes, queue delays, probabilities), so the metrics snapshot is
//! byte-identical across thread counts; parallelism lives inside the
//! telemetry query engine, row assembly, and the classifier — all
//! order-preserving parkit fan-outs.
//!
//! Parity: feature values are captured at *launch-event time* from the
//! incremental engine (frozen, strictly-before-launch state), while
//! telemetry, scaling, and prediction are pure per-row functions — so
//! batching policy affects throughput and latency, never a prediction.
//!
//! Backends: [`ServeConfig::backend`] selects the stage-2 inference
//! path. [`ScorerBackend::Interpreted`] scores a per-flush [`Dataset`]
//! through the model zoo; [`ScorerBackend::Compiled`] flattens the model
//! once at serve start (`mlkit::fastpath`) and scores batches out of
//! reusable scratch with zero steady-state allocation. The two are
//! bit-identical, prediction for prediction and snapshot for snapshot.
//!
//! Step feeding: the loop's body is the public [`StepScorer`] — a
//! one-event-at-a-time core ([`StepScorer::step_tick`] /
//! [`StepScorer::step_launch`] / [`StepScorer::step_sbe`] /
//! [`StepScorer::step_finish`]) that [`serve`] drives from an
//! [`EventStream`] and the `sbed` network daemon drives from decoded
//! wire frames. Both feeders share the engine, batching, and scoring
//! code paths, so equal event sequences score bit-identically however
//! the events arrive.

use crate::artifact::{CompiledScorer, PipelineArtifact};
use crate::engine::StreamFeatureEngine;
use crate::{Result, StreamError};
use mlkit::dataset::Dataset;
use mlkit::fastpath::FeatureFrame;
use obskit::Recorder;
use sbepred::features::{assemble_row, HistCounts, SampleFacts};
use serde::Serialize;
use titan_sim::engine::{SampleTelemetry, TelemetryQueryEngine};
use titan_sim::events::{EventStream, TraceEvent};
use titan_sim::schedule::ApRunId;
use titan_sim::topology::NodeId;
use titan_sim::trace::TraceSet;

/// Which inference path scores a flushed batch. Both produce
/// bit-identical probabilities (the differential and parity suites hold
/// them to it); they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum ScorerBackend {
    /// The model zoo's interpreted `predict_proba`: per-row `Vec`
    /// assembly, a `Dataset` per flush, pointer-walking tree nodes.
    #[default]
    Interpreted,
    /// The mlkit fastpath: the model is flattened once at serve start
    /// into struct-of-arrays node tables and batches are scored out of
    /// reusable scratch — no per-row allocation in steady state.
    Compiled,
}

impl ScorerBackend {
    /// Parses the `repro` CLI spelling (`interpreted` / `compiled`).
    pub fn parse(s: &str) -> Option<ScorerBackend> {
        match s {
            "interpreted" => Some(ScorerBackend::Interpreted),
            "compiled" => Some(ScorerBackend::Compiled),
            _ => None,
        }
    }
}

/// Tuning and windowing for one serve run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Flush a batch once this many requests are pending.
    pub batch_capacity: usize,
    /// Flush once the oldest pending request has waited this many trace
    /// minutes (bounded scoring latency).
    pub max_delay_min: u64,
    /// First minute (inclusive) whose launches are scored. History is
    /// always replayed from minute 0 regardless.
    pub score_from_min: u64,
    /// End of the scoring window (exclusive).
    pub score_until_min: u64,
    /// Worker threads for row assembly (telemetry and the classifier
    /// resolve their own, both through parkit).
    pub threads: parkit::Threads,
    /// Inference path for stage-2 scoring.
    pub backend: ScorerBackend,
}

impl ServeConfig {
    /// A config scoring `[from, until)` with the defaults: batches of 64,
    /// 5-minute latency bound, auto threads, interpreted scoring.
    pub fn window(from: u64, until: u64) -> ServeConfig {
        ServeConfig {
            batch_capacity: 64,
            max_delay_min: 5,
            score_from_min: from,
            score_until_min: until,
            threads: parkit::Threads::Auto,
            backend: ScorerBackend::Interpreted,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.batch_capacity == 0 {
            return Err(StreamError::InvalidConfig {
                reason: "batch_capacity must be at least 1".into(),
            });
        }
        if self.score_from_min >= self.score_until_min {
            return Err(StreamError::InvalidConfig {
                reason: format!(
                    "empty scoring window [{}, {})",
                    self.score_from_min, self.score_until_min
                ),
            });
        }
        Ok(())
    }
}

/// One scored launch-node: the streaming counterpart of a row of the
/// batch `TwoStageOutcome`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScoredLaunch {
    /// Launch minute.
    pub minute: u64,
    /// The application run.
    pub aprun: u32,
    /// The application.
    pub app: u32,
    /// The node.
    pub node: u32,
    /// Predicted-SBE probability (0 when stage 1 filtered the node).
    pub probability: f32,
    /// Hard decision at the model threshold.
    pub predicted: bool,
    /// Whether the request reached the stage-2 classifier.
    pub stage2: bool,
}

/// The mitigation a flagged launch should receive — the paper's §I
/// motivation (checkpoint-interval tuning; pulling a node out of the
/// schedulable pool for the worst offenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Mitigation {
    /// Shorten the application's checkpoint interval for this run.
    ShortenCheckpoint,
    /// Drain the node after the run: predicted risk is high enough that
    /// follow-on work should not be placed there.
    DrainNode,
}

/// Probability at or above which the mitigation escalates from
/// checkpoint tuning to node draining.
pub const DRAIN_THRESHOLD: f32 = 0.9;

/// An emitted mitigation decision for a flagged launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Alert {
    /// Launch minute.
    pub minute: u64,
    /// The application run.
    pub aprun: u32,
    /// The node at risk.
    pub node: u32,
    /// The application.
    pub app: u32,
    /// Predicted-SBE probability.
    pub probability: f32,
    /// The decision.
    pub decision: Mitigation,
}

impl Alert {
    fn for_launch(s: &ScoredLaunch) -> Alert {
        Alert {
            minute: s.minute,
            aprun: s.aprun,
            node: s.node,
            app: s.app,
            probability: s.probability,
            decision: if s.probability >= DRAIN_THRESHOLD {
                Mitigation::DrainNode
            } else {
                Mitigation::ShortenCheckpoint
            },
        }
    }
}

/// Receives mitigation decisions as the loop emits them.
pub trait AlertSink {
    /// Called once per flagged launch, in emission order.
    ///
    /// # Errors
    ///
    /// A sink error aborts the serve run.
    fn on_alert(&mut self, alert: &Alert) -> Result<()>;
}

/// The in-memory sink: collects alerts into a `Vec`.
impl AlertSink for Vec<Alert> {
    fn on_alert(&mut self, alert: &Alert) -> Result<()> {
        self.push(*alert);
        Ok(())
    }
}

/// A sink that drops everything (scoring-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AlertSink for NullSink {
    fn on_alert(&mut self, _alert: &Alert) -> Result<()> {
        Ok(())
    }
}

/// The outcome of one serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Every scored launch-node in the window, sorted by
    /// `(minute, aprun, node)`.
    pub scored: Vec<ScoredLaunch>,
    /// Stream events replayed.
    pub n_events: u64,
    /// Launch events replayed (whole trace, not just the window).
    pub n_launches: u64,
    /// SBE visibility events ingested.
    pub n_sbe_events: u64,
    /// Score requests issued (launch-nodes inside the window).
    pub n_requests: u64,
    /// Requests that reached the stage-2 classifier.
    pub n_stage2: u64,
    /// Batches flushed.
    pub n_batches: u64,
    /// Alerts emitted.
    pub n_alerts: u64,
}

/// A queued stage-2 score request with its launch-time feature facts.
#[derive(Debug, Clone)]
struct PendingRequest {
    minute: u64,
    aprun: ApRunId,
    node: NodeId,
    app: u32,
    facts: SampleFacts,
    hist: HistCounts,
}

/// The scorer's handle on its serving artifact. A scorer starts on a
/// caller-borrowed champion; a hot swap installs an owned (promoted)
/// challenger without requiring the caller to keep the old borrow
/// alive or restart the loop.
enum ArtifactRef<'a> {
    /// The artifact the scorer was built with.
    Borrowed(&'a PipelineArtifact),
    /// A hot-swapped successor, owned by the scorer.
    Owned(std::sync::Arc<PipelineArtifact>),
}

impl ArtifactRef<'_> {
    fn get(&self) -> &PipelineArtifact {
        match self {
            ArtifactRef::Borrowed(a) => a,
            ArtifactRef::Owned(a) => a,
        }
    }
}

/// Per-run scoring state, built once before the replay starts.
enum Scorer {
    /// Interpreted path: stateless, the model scores a per-flush
    /// `Dataset`.
    Interpreted,
    /// Compiled path with its reusable scratch.
    Compiled(Box<CompiledState>),
}

/// Scratch for the compiled backend. Every buffer is reused across
/// flushes, so once the largest batch has been seen a flush performs no
/// heap allocation at all.
struct CompiledState {
    scorer: CompiledScorer,
    /// Feature width (the scaler's row length).
    n_features: usize,
    /// Per-row assembly scratch, one slot per batch row up to the batch
    /// high-water mark. Slots are disjoint, so assembly can fan out
    /// across parkit workers without sharing mutable state.
    slots: Vec<RowSlot>,
    /// Column-major batch buffer, persisted across flushes (capacity is
    /// retained by `reset`).
    frame: FeatureFrame,
    /// Probability output.
    proba: Vec<f32>,
}

/// One row's reusable assembly scratch for the compiled backend.
struct RowSlot {
    /// Raw (unscaled) feature row.
    raw: Vec<f32>,
    /// Standardised feature row (fixed width).
    scaled: Vec<f32>,
    /// Assembly failure, surfaced by the driver in batch order.
    err: Option<StreamError>,
}

/// The bare facts of one launch event, as a step feeder presents them:
/// exactly what [`serve`] derives from the trace record and app catalog,
/// and what `sbed` decodes from a wire frame.
#[derive(Debug, Clone)]
pub struct LaunchFacts<'a> {
    /// Launch minute.
    pub minute: u64,
    /// Application-run id (must be unique per launch).
    pub aprun: u32,
    /// Application id.
    pub app: u32,
    /// Scheduled runtime in minutes.
    pub runtime_min: u64,
    /// Aggregate GPU core utilisation of the application.
    pub core_util: f64,
    /// Aggregate GPU memory utilisation of the application.
    pub mem_util: f64,
    /// Allocated nodes, in allocation order (the scorer sorts its own
    /// copy for the request universe; history queries see this order).
    pub nodes: &'a [NodeId],
}

/// Counters a [`StepScorer`] accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Score requests issued (launch-nodes inside the window).
    pub n_requests: u64,
    /// Requests that reached the stage-2 classifier.
    pub n_stage2: u64,
    /// Batches flushed.
    pub n_batches: u64,
    /// Alerts emitted.
    pub n_alerts: u64,
}

/// The step-style scoring core: one-event-at-a-time feeding of the
/// incremental engine plus the bounded-batch TwoStage scoring loop.
///
/// [`serve`] drives this from a trace's [`EventStream`]; the `sbed`
/// network daemon drives it from decoded wire frames — both share the
/// same feature assembly (`assemble_row`), stage-1 filter, batching
/// policy, and backend scorers, so a network feed and an in-process
/// replay of the same event sequence are bit-identical.
///
/// Call discipline (mirrors the event-stream contract): `step_tick`
/// opens a minute, then that minute's `step_launch` calls (aprun order),
/// then its `step_sbe` calls; `step_finish` flushes whatever is still
/// queued. Scored launches are appended to the caller's `out` vector in
/// emission order (stage-1 rejections at launch time, stage-2 rows at
/// flush time, batch order).
pub struct StepScorer<'a> {
    artifact: ArtifactRef<'a>,
    cfg: ServeConfig,
    spec: sbepred::features::FeatureSpec,
    topology: titan_sim::topology::Topology,
    query_engine: Option<TelemetryQueryEngine<'a>>,
    scorer: Scorer,
    engine: StreamFeatureEngine,
    pending: Vec<PendingRequest>,
    stats: StepStats,
    /// Serving generation: 0 for the artifact the scorer was built with,
    /// bumped by every committed hot swap.
    generation: u32,
}

/// A validated, pre-compiled challenger ready to be committed by
/// [`StepScorer::swap_artifact`]. Building one does all the fallible,
/// allocating work (schema check, generation check, fastpath
/// compilation) *off* the swap boundary, so the commit itself is a pure
/// field exchange.
pub struct PreparedSwap {
    artifact: std::sync::Arc<PipelineArtifact>,
    scorer: Scorer,
    generation: u32,
}

impl PreparedSwap {
    /// The generation this swap will install.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl<'a> StepScorer<'a> {
    /// Builds the scoring core. `telemetry` is the trace backing
    /// temperature/power window queries; it may be `None` only when the
    /// artifact's feature spec needs no telemetry (e.g.
    /// `FeatureSpec::no_telemetry()` — the spec network artifacts are
    /// trained with, since sensor windows do not travel on the wire).
    ///
    /// # Errors
    ///
    /// Config validation, an empty feature spec, or a telemetry-needing
    /// spec without a telemetry source.
    pub fn new(
        artifact: &'a PipelineArtifact,
        cfg: &ServeConfig,
        topology: titan_sim::topology::Topology,
        telemetry: Option<&'a TraceSet>,
    ) -> Result<StepScorer<'a>> {
        cfg.validate()?;
        let spec = *artifact.spec();
        let n_features = spec.feature_names().len();
        if n_features == 0 {
            return Err(StreamError::InvalidConfig {
                reason: "artifact feature spec selects no features".into(),
            });
        }
        let query_engine = if spec.needs_telemetry() {
            match telemetry {
                Some(trace) => Some(TelemetryQueryEngine::new(trace)?),
                None => {
                    return Err(StreamError::InvalidConfig {
                        reason: "artifact spec needs telemetry but no telemetry source was \
                                 provided (train with FeatureSpec::no_telemetry() for network \
                                 serving)"
                            .into(),
                    })
                }
            }
        } else {
            None
        };
        let scorer = match cfg.backend {
            ScorerBackend::Interpreted => Scorer::Interpreted,
            ScorerBackend::Compiled => Scorer::Compiled(Box::new(CompiledState {
                scorer: artifact.compile()?,
                n_features,
                slots: Vec::new(),
                frame: FeatureFrame::with_capacity(n_features, cfg.batch_capacity.min(1_024)),
                proba: Vec::new(),
            })),
        };
        Ok(StepScorer {
            artifact: ArtifactRef::Borrowed(artifact),
            cfg: *cfg,
            spec,
            topology,
            query_engine,
            scorer,
            engine: StreamFeatureEngine::new(),
            pending: Vec::new(),
            stats: StepStats::default(),
            generation: 0,
        })
    }

    /// The serving generation: 0 until the first committed hot swap.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The artifact currently being served.
    pub fn artifact(&self) -> &PipelineArtifact {
        self.artifact.get()
    }

    /// Validates and pre-compiles a challenger for a later
    /// [`StepScorer::swap_artifact`]. All the expensive or fallible work
    /// happens here, off the swap boundary: the challenger must carry
    /// the *same feature schema* as the serving champion (the stream
    /// feeder and pending requests were assembled under it), and
    /// `generation` must strictly advance the serving generation.
    ///
    /// # Errors
    ///
    /// * [`mlkit::MlError::ArtifactSchemaMismatch`] (via
    ///   [`StreamError::Ml`]) — the challenger was trained under a
    ///   different feature schema;
    /// * [`mlkit::MlError::ArtifactLineage`] — `generation` does not
    ///   strictly advance the serving generation;
    /// * compilation errors for the compiled backend.
    pub fn prepare_swap(
        &self,
        artifact: std::sync::Arc<PipelineArtifact>,
        generation: u32,
    ) -> Result<PreparedSwap> {
        let expected = self.artifact.get().schema_hash();
        let found = artifact.schema_hash();
        if found != expected {
            return Err(mlkit::MlError::ArtifactSchemaMismatch { expected, found }.into());
        }
        if generation <= self.generation {
            return Err(mlkit::MlError::ArtifactLineage {
                reason: format!(
                    "swap generation {generation} does not advance serving generation {}",
                    self.generation
                ),
            }
            .into());
        }
        let scorer = match self.cfg.backend {
            ScorerBackend::Interpreted => Scorer::Interpreted,
            ScorerBackend::Compiled => {
                let n_features = self.spec.feature_names().len();
                Scorer::Compiled(Box::new(CompiledState {
                    scorer: artifact.compile()?,
                    n_features,
                    slots: Vec::new(),
                    frame: FeatureFrame::with_capacity(
                        n_features,
                        self.cfg.batch_capacity.min(1_024),
                    ),
                    proba: Vec::new(),
                }))
            }
        };
        Ok(PreparedSwap {
            artifact,
            scorer,
            generation,
        })
    }

    /// Commits a prepared hot swap at a batch boundary: everything
    /// admitted before this call is flushed and scored by the *old*
    /// generation (no request is dropped or double-scored), then the
    /// challenger becomes the serving artifact. Scores emitted by the
    /// flush land in `out`/`sink` exactly as a deadline flush would
    /// have delivered them.
    ///
    /// # Errors
    ///
    /// Propagates flush (telemetry/assembly/classifier/sink) errors; on
    /// error the swap is not committed.
    pub fn swap_artifact(
        &mut self,
        now_min: u64,
        prepared: PreparedSwap,
        out: &mut Vec<ScoredLaunch>,
        sink: &mut dyn AlertSink,
        rec: &mut Recorder,
    ) -> Result<()> {
        self.flush_pending(now_min, out, sink, rec)?;
        rec.incr("streamd.swaps", 1);
        self.commit_swap(prepared);
        rec.gauge("streamd.generation", self.generation as f64);
        Ok(())
    }

    /// The swap boundary itself: a pure field exchange, nothing else.
    /// Hot-path root (D006/D007/D008) — the pause a swap imposes on the
    /// serving loop is exactly this function, so it must not panic,
    /// allocate, or consult ambient state.
    fn commit_swap(&mut self, prepared: PreparedSwap) {
        self.artifact = ArtifactRef::Owned(prepared.artifact);
        self.scorer = prepared.scorer;
        self.generation = prepared.generation;
    }

    /// Opens `minute`: applies the previous minute's deferred prev-app
    /// updates and flushes if the oldest pending request has hit the
    /// latency deadline.
    ///
    /// # Errors
    ///
    /// Propagates flush (telemetry/assembly/classifier/sink) errors.
    pub fn step_tick(
        &mut self,
        minute: u64,
        out: &mut Vec<ScoredLaunch>,
        sink: &mut dyn AlertSink,
        rec: &mut Recorder,
    ) -> Result<()> {
        self.engine.end_minute();
        let deadline_hit = self
            .pending
            .first()
            .is_some_and(|p| minute.saturating_sub(p.minute) >= self.cfg.max_delay_min);
        if deadline_hit {
            self.flush_pending(minute, out, sink, rec)?;
        }
        Ok(())
    }

    /// Feeds one launch: updates the engine, and (for launches inside
    /// the scoring window) issues per-node requests in sorted node
    /// order — stage-1 rejections are appended to `out` immediately,
    /// offender nodes queue for the stage-2 batch.
    ///
    /// # Errors
    ///
    /// Unknown node ids (topology lookup) and flush errors.
    pub fn step_launch(
        &mut self,
        launch: &LaunchFacts<'_>,
        out: &mut Vec<ScoredLaunch>,
        sink: &mut dyn AlertSink,
        rec: &mut Recorder,
    ) -> Result<()> {
        self.engine
            .observe_launch_parts(launch.minute, launch.app, launch.nodes);
        if launch.minute < self.cfg.score_from_min || launch.minute >= self.cfg.score_until_min {
            return Ok(());
        }
        // Requests in (aprun, node) order, matching the batch sample
        // universe.
        let mut nodes = launch.nodes.to_vec();
        nodes.sort_unstable();
        for node in nodes {
            self.stats.n_requests += 1;
            rec.incr("streamd.requests", 1);
            if !self.artifact.get().is_offender(node.0) {
                // Stage 1: never-offending node — predicted SBE-free
                // without touching the classifier.
                rec.incr("streamd.stage1_filtered", 1);
                out.push(ScoredLaunch {
                    minute: launch.minute,
                    aprun: launch.aprun,
                    app: launch.app,
                    node: node.0,
                    probability: 0.0,
                    predicted: false,
                    stage2: false,
                });
                continue;
            }
            let facts = SampleFacts {
                app: launch.app,
                prev_app: self.engine.previous_app(node.0),
                runtime_min: launch.runtime_min,
                n_nodes: launch.nodes.len() as u32,
                core_util: launch.core_util,
                mem_util: launch.mem_util,
                loc: self.topology.location(node)?,
                node: node.0,
            };
            let hist = self.engine.hist_counts(
                &self.spec,
                node,
                titan_sim::apps::AppId(launch.app),
                launch.nodes,
                launch.minute,
            );
            self.pending.push(PendingRequest {
                minute: launch.minute,
                aprun: ApRunId(launch.aprun),
                node,
                app: launch.app,
                facts,
                hist,
            });
            if self.pending.len() >= self.cfg.batch_capacity {
                self.flush_pending(launch.minute, out, sink, rec)?;
            }
        }
        Ok(())
    }

    /// Ingests one job-boundary SBE visibility event.
    ///
    /// # Errors
    ///
    /// Propagates incremental-history ordering violations.
    pub fn step_sbe(
        &mut self,
        minute: u64,
        node: NodeId,
        app: titan_sim::apps::AppId,
        count: u32,
        rec: &mut Recorder,
    ) -> Result<()> {
        rec.incr("streamd.sbe_events", 1);
        self.engine.observe_sbe(minute, node, app, count)
    }

    /// Ends the feed: applies the final minute's deferred updates and
    /// flushes whatever is still queued (queue delays are measured
    /// against the scoring window's end).
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn step_finish(
        &mut self,
        out: &mut Vec<ScoredLaunch>,
        sink: &mut dyn AlertSink,
        rec: &mut Recorder,
    ) -> Result<()> {
        self.engine.end_minute();
        let final_minute = self.cfg.score_until_min;
        self.flush_pending(final_minute, out, sink, rec)
    }

    /// The counters accumulated so far.
    pub fn step_stats(&self) -> StepStats {
        self.stats
    }

    /// Whether a launch at `minute` falls inside the scoring window
    /// (feeders use this to predict how many scored rows a launch will
    /// produce).
    pub fn in_window(&self, minute: u64) -> bool {
        minute >= self.cfg.score_from_min && minute < self.cfg.score_until_min
    }

    /// Scores and drains the pending batch.
    fn flush_pending(
        &mut self,
        now_min: u64,
        out: &mut Vec<ScoredLaunch>,
        sink: &mut dyn AlertSink,
        rec: &mut Recorder,
    ) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch: Vec<PendingRequest> = std::mem::take(&mut self.pending);
        let flush_span = rec.span_start("streamd.flush");
        self.stats.n_batches += 1;
        rec.incr("streamd.batches", 1);
        rec.observe("streamd.batch_rows", batch.len() as f64);
        for p in &batch {
            rec.observe(
                "streamd.queue_delay_min",
                now_min.saturating_sub(p.minute) as f64,
            );
        }

        // Telemetry for the whole batch in one order-preserving query;
        // the engine's window statistics are pure functions of
        // (aprun, node), so batch composition cannot change a value.
        let feature_span = rec.span_start("streamd.features");
        let telemetry: Vec<SampleTelemetry> = match &self.query_engine {
            Some(qe) => {
                let pairs: Vec<_> = batch.iter().map(|p| (p.aprun, p.node)).collect();
                qe.query(&pairs)?
            }
            None => Vec::new(),
        };
        let scaler = self.artifact.get().scaler();
        // Both arms record the identical feature/score span sequence and
        // produce bit-identical probabilities, so the obskit snapshot
        // does not depend on the backend. The assembly/scoring bodies
        // live in named functions (`assemble_batch_*` / `score_batch_*`)
        // so `detlint.toml` can declare the compiled pair as hot-path
        // roots (D006/D007/D008) without dragging driver instrumentation
        // into the proof obligation.
        let proba_interpreted: Vec<f32>;
        let proba: &[f32] = match &mut self.scorer {
            Scorer::Interpreted => {
                let rows =
                    assemble_batch_interpreted(&self.cfg, &self.spec, scaler, &batch, &telemetry)?;
                rec.span_end(feature_span);

                let score_span = rec.span_start("streamd.score");
                let ds =
                    Dataset::from_rows(&rows, &vec![0.0; rows.len()]).map_err(StreamError::from)?;
                proba_interpreted = self.artifact.get().model().predict_proba(&ds)?;
                rec.span_end(score_span);
                &proba_interpreted
            }
            Scorer::Compiled(state) => {
                assemble_batch_compiled(&self.cfg, &self.spec, scaler, state, &batch, &telemetry)?;
                rec.span_end(feature_span);

                let score_span = rec.span_start("streamd.score");
                score_batch_compiled(state, batch.len())?;
                rec.span_end(score_span);
                &state.proba
            }
        };
        let threshold = self.artifact.get().model().threshold();

        for (p, &prob) in batch.iter().zip(proba) {
            self.stats.n_stage2 += 1;
            rec.incr("streamd.stage2_scored", 1);
            rec.observe("streamd.probability_pct", prob as f64 * 100.0);
            let s = ScoredLaunch {
                minute: p.minute,
                aprun: p.aprun.0,
                app: p.app,
                node: p.node.0,
                probability: prob,
                predicted: prob >= threshold,
                stage2: true,
            };
            out.push(s);
            if s.predicted {
                self.stats.n_alerts += 1;
                rec.incr("streamd.alerts", 1);
                sink.on_alert(&Alert::for_launch(&s))?;
            }
        }
        rec.span_end(flush_span);
        Ok(())
    }
}

/// Replays `trace` against `artifact` (see the module docs).
///
/// # Errors
///
/// Propagates config validation, trace lookup, telemetry, classifier,
/// and sink errors.
pub fn serve(
    trace: &TraceSet,
    artifact: &PipelineArtifact,
    cfg: &ServeConfig,
    sink: &mut dyn AlertSink,
) -> Result<ServeReport> {
    serve_observed(trace, artifact, cfg, sink, &mut Recorder::null())
}

/// Like [`serve`], but records per-stage latency/throughput metrics into
/// `rec`: request/batch counters, batch-size and queue-delay histograms,
/// a probability histogram, and `streamd.flush` / `streamd.features` /
/// `streamd.score` spans. All measurements are driver-side and
/// deterministic — the snapshot is byte-identical across thread counts.
///
/// # Errors
///
/// See [`serve`].
pub fn serve_observed(
    trace: &TraceSet,
    artifact: &PipelineArtifact,
    cfg: &ServeConfig,
    sink: &mut dyn AlertSink,
    rec: &mut Recorder,
) -> Result<ServeReport> {
    let topology = trace.config().topology;
    let mut step = StepScorer::new(artifact, cfg, topology, Some(trace))?;

    let serve_span = rec.span_start("streamd.serve");
    rec.gauge("streamd.batch_capacity", cfg.batch_capacity as f64);
    rec.gauge("streamd.max_delay_min", cfg.max_delay_min as f64);

    let mut scored: Vec<ScoredLaunch> = Vec::new();
    let mut report = ServeReport {
        scored: Vec::new(),
        n_events: 0,
        n_launches: 0,
        n_sbe_events: 0,
        n_requests: 0,
        n_stage2: 0,
        n_batches: 0,
        n_alerts: 0,
    };

    let stream = EventStream::new(trace)?;
    rec.gauge("streamd.horizon_min", stream.horizon_min() as f64);
    let catalog = trace.catalog();

    for event in stream {
        report.n_events += 1;
        match event {
            TraceEvent::Tick { minute } => {
                // The tick opens `minute`; everything queued in earlier
                // minutes is now strictly in the past.
                step.step_tick(minute, &mut scored, sink, rec)?;
            }
            TraceEvent::Launch { minute, aprun } => {
                report.n_launches += 1;
                let run = trace.aprun(aprun)?;
                let profile = catalog.profile(run.app_id)?;
                step.step_launch(
                    &LaunchFacts {
                        minute,
                        aprun: aprun.0,
                        app: run.app_id.0,
                        runtime_min: run.runtime_min(),
                        core_util: profile.core_util,
                        mem_util: profile.mem_util,
                        nodes: &run.nodes,
                    },
                    &mut scored,
                    sink,
                    rec,
                )?;
            }
            TraceEvent::SbeVisible {
                minute,
                node,
                app,
                count,
                ..
            } => {
                report.n_sbe_events += 1;
                step.step_sbe(minute, node, app, count, rec)?;
            }
        }
    }
    // Final flush: whatever is still queued at end of trace.
    step.step_finish(&mut scored, sink, rec)?;

    let stats = step.step_stats();
    report.n_requests = stats.n_requests;
    report.n_stage2 = stats.n_stage2;
    report.n_batches = stats.n_batches;
    report.n_alerts = stats.n_alerts;

    rec.incr("streamd.events", report.n_events);
    rec.span_end(serve_span);

    scored.sort_unstable_by_key(|s| (s.minute, s.aprun, s.node));
    report.scored = scored;
    Ok(report)
}

/// Interpreted-backend feature assembly: fans the per-row pipeline out
/// with `parkit` and returns freshly allocated standardized rows. This
/// is the fallback arm — it allocates per flush by design and is
/// covered by a reasoned `[[assume]]` in `detlint.toml` rather than the
/// compiled arm's alloc-freedom proof.
fn assemble_batch_interpreted(
    cfg: &ServeConfig,
    spec: &sbepred::features::FeatureSpec,
    scaler: &mlkit::scaler::StandardScaler,
    batch: &[PendingRequest],
    telemetry: &[SampleTelemetry],
) -> Result<Vec<Vec<f32>>> {
    let indices: Vec<usize> = (0..batch.len()).collect();
    parkit::try_par_map::<_, _, StreamError, _>(cfg.threads, &indices, |&i| {
        let p = &batch[i];
        let t = if spec.needs_telemetry() {
            telemetry.get(i)
        } else {
            None
        };
        let mut raw: Vec<f32> = Vec::with_capacity(scaler.means().len());
        assemble_row(spec, &p.facts, t, &p.hist, &mut raw).map_err(StreamError::from)?;
        let mut out = vec![0.0f32; raw.len()];
        scaler
            .transform_row(&mut out, &raw)
            .map_err(StreamError::from)?;
        Ok(out)
    })
}

/// Compiled-backend feature assembly: per-row work fans out across
/// parkit workers into disjoint reusable [`RowSlot`]s, then the driver
/// scatters the standardized rows into the persistent frame in batch
/// order. `assemble_row` and `transform_row` are the same pure per-row
/// functions the interpreted path fans out, over the same batch order,
/// so the assembled frame is bit-identical to the old serial packing —
/// but the assembly no longer serialises behind one core, which is what
/// made compiled stream-mode *slower* than interpreted on small models.
/// Hot-path root: detlint proves every function reachable from here
/// panic-free, steady-state alloc-free, and deterministic
/// (D006/D007/D008).
fn assemble_batch_compiled(
    cfg: &ServeConfig,
    spec: &sbepred::features::FeatureSpec,
    scaler: &mlkit::scaler::StandardScaler,
    state: &mut CompiledState,
    batch: &[PendingRequest],
    telemetry: &[SampleTelemetry],
) -> Result<()> {
    let n = batch.len();
    let width = state.n_features;
    if state.slots.len() < n {
        // Warm-up growth only: slots persist at the batch high-water
        // mark (bounded by batch_capacity) and are reused afterwards.
        state.slots.resize_with(n, || RowSlot {
            // detlint: allow(D007) reason=warm-up only: slots are built once up to the batch high-water mark and reused afterwards
            raw: Vec::with_capacity(width),
            // detlint: allow(D007) reason=warm-up only: scaled buffers are built once up to the batch high-water mark and reused afterwards
            scaled: vec![0.0; width],
            err: None,
        });
    }
    let needs_telemetry = spec.needs_telemetry();
    let fill = |i: usize, slot: &mut RowSlot| {
        // detlint: allow(D006) reason=i = offset + k from par_apply_chunks over slots[..n], so i < n = batch.len()
        let p = &batch[i];
        // Checked lookup: a telemetry/batch length mismatch surfaces as
        // the assembler's missing-telemetry error, never a panic.
        let t = if needs_telemetry {
            telemetry.get(i)
        } else {
            None
        };
        slot.err = None;
        slot.raw.clear();
        let assembled = assemble_row(spec, &p.facts, t, &p.hist, &mut slot.raw)
            .map_err(StreamError::from)
            .and_then(|()| {
                scaler
                    .transform_row(&mut slot.scaled, &slot.raw)
                    .map_err(StreamError::from)
            });
        if let Err(e) = assembled {
            slot.err = Some(e);
        }
    };
    // Each slot is touched by exactly one worker and the scatter below
    // reads them in batch order, so the thread policy cannot change a
    // bit of the frame.
    // detlint: allow(D006) reason=slots[..n] is in bounds: resize_with above guarantees slots.len() >= n
    parkit::par_apply_chunks(cfg.threads, &mut state.slots[..n], |offset, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            fill(offset + k, slot);
        }
    });
    // Surface the first failure in batch order (matching the serial
    // loop's error precedence), then pack the frame.
    // detlint: allow(D006) reason=slots[..n] is in bounds: resize_with above guarantees slots.len() >= n
    for slot in state.slots[..n].iter_mut() {
        if let Some(e) = slot.err.take() {
            return Err(e);
        }
    }
    state.frame.reset(width);
    // detlint: allow(D006) reason=slots[..n] is in bounds: resize_with above guarantees slots.len() >= n
    for slot in state.slots[..n].iter() {
        state
            .frame
            .push_row(&slot.scaled)
            .map_err(StreamError::from)?;
    }
    Ok(())
}

/// Compiled-backend scoring over the assembled frame. Hot-path root
/// (D006/D007/D008): after the first full batch the probability buffer
/// has reached `batch_capacity` and the resize below reuses capacity.
fn score_batch_compiled(state: &mut CompiledState, n_rows: usize) -> Result<()> {
    state.proba.clear();
    // detlint: allow(D007) reason=bounded by batch_capacity; capacity is reused after the first full batch
    state.proba.resize(n_rows, 0.0);
    state
        .scorer
        .predict_proba_into(&state.frame, &mut state.proba)?;
    Ok(())
}
