//! The shipped TwoStage pipeline artifact.
//!
//! An artifact bundles everything a scoring daemon needs and nothing it
//! must recompute: the [`FeatureSpec`] the model was trained under, the
//! frozen stage-1 offender-node set, the train-window
//! [`StandardScaler`], and the fitted stage-2 classifier. It serialises
//! through the versioned [`mlkit::artifact`] envelope; the envelope's
//! schema hash is the FNV-1a fingerprint of the spec's *ordered feature
//! names*, so an artifact trained by a build whose feature schema has
//! since drifted is rejected at load time instead of silently misaligning
//! columns.

use crate::{Result, StreamError};
use mlkit::artifact::{Envelope, Lineage};
use mlkit::dataset::Dataset;
use mlkit::fastpath::{CompiledGbdt, CompiledLinear, FeatureFrame};
use mlkit::gbdt::Gbdt;
use mlkit::hash::fnv1a64;
use mlkit::linear::LogisticRegression;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use sbepred::features::FeatureSpec;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The artifact kind tag for TwoStage pipelines.
pub const PIPELINE_KIND: &str = "sbepred/twostage";

/// The stage-2 classifier inside an artifact: the serialisable subset of
/// the workspace's model zoo (the paper's deployment-relevant models).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PipelineModel {
    /// Gradient-boosted decision trees — the paper's best model.
    Gbdt(Gbdt),
    /// Logistic regression.
    Logistic(LogisticRegression),
}

impl PipelineModel {
    /// The wrapped classifier's display name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineModel::Gbdt(m) => m.name(),
            PipelineModel::Logistic(m) => m.name(),
        }
    }

    /// The wrapped classifier's decision threshold.
    pub fn threshold(&self) -> f32 {
        match self {
            PipelineModel::Gbdt(m) => m.threshold(),
            PipelineModel::Logistic(m) => m.threshold(),
        }
    }

    /// Positive-class probabilities for `data`.
    ///
    /// # Errors
    ///
    /// Propagates the classifier's predict errors (not fitted, dimension
    /// mismatch).
    pub fn predict_proba(&self, data: &Dataset) -> Result<Vec<f32>> {
        let p = match self {
            PipelineModel::Gbdt(m) => m.predict_proba(data)?,
            PipelineModel::Logistic(m) => m.predict_proba(data)?,
        };
        Ok(p)
    }

    /// Flattens the wrapped classifier into a [`CompiledScorer`].
    ///
    /// Compilation is a load/serve-time derivation: the artifact wire
    /// format stays the interpreted model, so shipped artifacts are
    /// unaffected and the compiled form can never drift from the model
    /// it was derived from.
    ///
    /// # Errors
    ///
    /// Returns [`mlkit::MlError::NotFitted`] (via [`StreamError::Ml`])
    /// for an unfitted model.
    pub fn compile(&self) -> Result<CompiledScorer> {
        let s = match self {
            PipelineModel::Gbdt(m) => CompiledScorer::Gbdt(Box::new(m.compile()?)),
            PipelineModel::Logistic(m) => CompiledScorer::Logistic(m.compile()?),
        };
        Ok(s)
    }
}

/// The branch-free counterpart of [`PipelineModel`]: struct-of-arrays
/// node tables (GBDT) or a bare weight vector (LR), scoring a reusable
/// [`FeatureFrame`] without allocating. Probabilities are bit-identical
/// to [`PipelineModel::predict_proba`] on the same rows.
#[derive(Debug, Clone)]
pub enum CompiledScorer {
    /// Flattened gradient-boosted trees (boxed: the packed node
    /// tables make this variant much larger than the LR one).
    Gbdt(Box<CompiledGbdt>),
    /// Compiled logistic regression.
    Logistic(CompiledLinear),
}

impl CompiledScorer {
    /// The underlying model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            CompiledScorer::Gbdt(_) => "GBDT",
            CompiledScorer::Logistic(_) => "LR",
        }
    }

    /// Number of features the scorer expects per row.
    pub fn n_features(&self) -> usize {
        match self {
            CompiledScorer::Gbdt(m) => m.n_features(),
            CompiledScorer::Logistic(m) => m.n_features(),
        }
    }

    /// The decision threshold carried over from the interpreted model.
    pub fn threshold(&self) -> f32 {
        match self {
            CompiledScorer::Gbdt(m) => m.threshold(),
            CompiledScorer::Logistic(m) => m.threshold(),
        }
    }

    /// Scores every row of `frame` into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`mlkit::MlError::DimensionMismatch`] (via
    /// [`StreamError::Ml`]) on frame-width or output-length mismatch.
    pub fn predict_proba_into(&self, frame: &FeatureFrame, out: &mut [f32]) -> Result<()> {
        match self {
            CompiledScorer::Gbdt(m) => m.predict_proba_into(frame, out)?,
            CompiledScorer::Logistic(m) => m.predict_proba_into(frame, out)?,
        }
        Ok(())
    }
}

/// The FNV-1a fingerprint of a spec's ordered feature names — the value
/// stored in the envelope's schema-hash field.
pub fn feature_schema_hash(spec: &FeatureSpec) -> u64 {
    let mut joined = String::new();
    for name in spec.feature_names() {
        joined.push_str(&name);
        joined.push('\n');
    }
    fnv1a64(joined.as_bytes())
}

/// The checksum by which an artifact is referenced in lineage headers:
/// FNV-1a 64 over its full encoded envelope bytes (header included), so
/// two artifacts differing only in lineage hash differently. Producer
/// and consumer of a succession link must both use this function.
///
/// # Errors
///
/// Propagates envelope-encoding errors.
pub fn artifact_checksum(art: &PipelineArtifact, lineage: Lineage) -> Result<u64> {
    Ok(fnv1a64(&art.to_bytes_with_lineage(lineage)?))
}

/// A trained, shippable TwoStage pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineArtifact {
    spec: FeatureSpec,
    /// Sorted ascending; stage-1 membership is a binary search.
    offenders: Vec<u32>,
    scaler: StandardScaler,
    model: PipelineModel,
    trained_end_min: u64,
    split_name: String,
}

impl PipelineArtifact {
    /// Bundles a trained pipeline. `offenders` is the stage-1 offender
    /// node set frozen at `trained_end_min` (sorted and deduplicated
    /// here).
    pub fn new(
        spec: FeatureSpec,
        mut offenders: Vec<u32>,
        scaler: StandardScaler,
        model: PipelineModel,
        trained_end_min: u64,
        split_name: impl Into<String>,
    ) -> PipelineArtifact {
        offenders.sort_unstable();
        offenders.dedup();
        PipelineArtifact {
            spec,
            offenders,
            scaler,
            model,
            trained_end_min,
            split_name: split_name.into(),
        }
    }

    /// The feature spec the model was trained under.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// The frozen stage-1 offender node set, sorted ascending.
    pub fn offenders(&self) -> &[u32] {
        &self.offenders
    }

    /// Whether stage 1 passes `node` to the classifier.
    pub fn is_offender(&self, node: u32) -> bool {
        self.offenders.binary_search(&node).is_ok()
    }

    /// The train-window feature standardiser.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// The fitted stage-2 classifier.
    pub fn model(&self) -> &PipelineModel {
        &self.model
    }

    /// Compiles the stage-2 classifier for the serve fastpath; see
    /// [`PipelineModel::compile`].
    ///
    /// # Errors
    ///
    /// See [`PipelineModel::compile`].
    pub fn compile(&self) -> Result<CompiledScorer> {
        self.model.compile()
    }

    /// The minute observable history was frozen at for stage 1.
    pub fn trained_end_min(&self) -> u64 {
        self.trained_end_min
    }

    /// The split the pipeline was trained on (`DS1`…).
    pub fn split_name(&self) -> &str {
        &self.split_name
    }

    /// The artifact's feature-schema fingerprint under the *running*
    /// code's [`FeatureSpec::feature_names`].
    pub fn schema_hash(&self) -> u64 {
        feature_schema_hash(&self.spec)
    }

    /// Serialises to envelope bytes with root lineage (a from-scratch
    /// artifact, not a promoted challenger).
    ///
    /// # Errors
    ///
    /// Propagates payload-encoding and envelope errors.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.to_bytes_with_lineage(Lineage::root())
    }

    /// Serialises to envelope bytes carrying the given lineage header —
    /// the continual-learning loop's path, recording which champion the
    /// artifact was promoted over and what window it was trained on.
    ///
    /// # Errors
    ///
    /// Propagates payload-encoding and envelope errors.
    pub fn to_bytes_with_lineage(&self, lineage: Lineage) -> Result<Vec<u8>> {
        let payload = serde_json::to_string(self)
            .map_err(|e| StreamError::Payload {
                reason: e.to_string(),
            })?
            .into_bytes();
        let env = Envelope::with_lineage(PIPELINE_KIND, self.schema_hash(), lineage, payload);
        Ok(env.encode()?)
    }

    /// Parses envelope bytes back into an artifact, verifying magic,
    /// format version, checksum, kind, and feature-schema hash. The
    /// lineage header is discarded; use
    /// [`PipelineArtifact::from_bytes_with_lineage`] when succession
    /// matters.
    ///
    /// # Errors
    ///
    /// * [`mlkit::MlError::ArtifactCorrupt`] / `ArtifactVersionMismatch`
    ///   (via [`StreamError::Ml`]) — envelope damage;
    /// * [`mlkit::MlError::ArtifactKindMismatch`] — not a TwoStage
    ///   pipeline;
    /// * [`StreamError::Payload`] — undecodable payload;
    /// * [`mlkit::MlError::ArtifactSchemaMismatch`] — the stored schema
    ///   hash disagrees with what the running code derives from the
    ///   decoded spec (stale artifact or tampered header).
    pub fn from_bytes(bytes: &[u8]) -> Result<PipelineArtifact> {
        Ok(PipelineArtifact::from_bytes_with_lineage(bytes)?.0)
    }

    /// Parses envelope bytes into an artifact plus its lineage header.
    ///
    /// # Errors
    ///
    /// See [`PipelineArtifact::from_bytes`]; additionally
    /// [`mlkit::MlError::ArtifactLineage`] for an inverted training
    /// window.
    pub fn from_bytes_with_lineage(bytes: &[u8]) -> Result<(PipelineArtifact, Lineage)> {
        let env = Envelope::decode(bytes)?;
        if env.kind != PIPELINE_KIND {
            return Err(mlkit::MlError::ArtifactKindMismatch {
                expected: PIPELINE_KIND.to_string(),
                found: env.kind,
            }
            .into());
        }
        let text = std::str::from_utf8(&env.payload).map_err(|e| StreamError::Payload {
            reason: format!("payload is not UTF-8: {e}"),
        })?;
        let mut art: PipelineArtifact =
            serde_json::from_str(text).map_err(|e| StreamError::Payload {
                reason: e.to_string(),
            })?;
        let expected = art.schema_hash();
        if env.schema_hash != expected {
            return Err(mlkit::MlError::ArtifactSchemaMismatch {
                expected,
                found: env.schema_hash,
            }
            .into());
        }
        // Stage-1 membership relies on sortedness; do not trust the wire.
        art.offenders.sort_unstable();
        art.offenders.dedup();
        Ok((art, env.lineage))
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// See [`PipelineArtifact::to_bytes`]; plus [`StreamError::Io`].
    pub fn save(&self, path: &Path) -> Result<()> {
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes).map_err(|e| StreamError::Io {
            path: path.display().to_string(),
            source: e,
        })
    }

    /// Reads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// See [`PipelineArtifact::from_bytes`]; plus [`StreamError::Io`].
    pub fn load(path: &Path) -> Result<PipelineArtifact> {
        let bytes = std::fs::read(path).map_err(|e| StreamError::Io {
            path: path.display().to_string(),
            source: e,
        })?;
        PipelineArtifact::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_artifact() -> PipelineArtifact {
        let rows = vec![
            vec![0.0f32, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.9, 0.1],
        ];
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let ds = Dataset::from_rows(&rows, &y).unwrap();
        let scaler = StandardScaler::fit(&ds).unwrap();
        let scaled = scaler.transform(&ds).unwrap();
        let mut lr = LogisticRegression::new().epochs(50);
        lr.fit(&scaled).unwrap();
        // A 2-feature toy spec: app group off, only location would not
        // give 2 columns — the spec is metadata here, not used to score.
        PipelineArtifact::new(
            FeatureSpec::only_hist(),
            vec![7, 3, 7, 1],
            scaler,
            PipelineModel::Logistic(lr),
            1_000,
            "DS1",
        )
    }

    #[test]
    fn offenders_sorted_and_deduped() {
        let art = toy_artifact();
        assert_eq!(art.offenders(), &[1, 3, 7]);
        assert!(art.is_offender(3));
        assert!(!art.is_offender(4));
    }

    #[test]
    fn bytes_round_trip() {
        let art = toy_artifact();
        let bytes = art.to_bytes().unwrap();
        let back = PipelineArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.offenders(), art.offenders());
        assert_eq!(back.trained_end_min(), art.trained_end_min());
        assert_eq!(back.split_name(), art.split_name());
        assert_eq!(back.spec(), art.spec());
        assert_eq!(back.schema_hash(), art.schema_hash());
        assert_eq!(back.model().name(), "LR");
    }

    #[test]
    fn lineage_round_trips_through_pipeline_bytes() {
        let art = toy_artifact();
        let lin = Lineage::child_of(0x5555_aaaa_5555_aaaa, 2, 1_000, 3_000);
        let bytes = art.to_bytes_with_lineage(lin).unwrap();
        let (back, got) = PipelineArtifact::from_bytes_with_lineage(&bytes).unwrap();
        assert_eq!(got, lin);
        assert_eq!(back.offenders(), art.offenders());
        // The plain decoder accepts the same bytes and drops the header.
        assert!(PipelineArtifact::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn root_lineage_by_default() {
        let art = toy_artifact();
        let (_, lin) = PipelineArtifact::from_bytes_with_lineage(&art.to_bytes().unwrap()).unwrap();
        assert_eq!(lin, Lineage::root());
    }

    #[test]
    fn schema_hash_tracks_feature_names() {
        assert_ne!(
            feature_schema_hash(&FeatureSpec::all()),
            feature_schema_hash(&FeatureSpec::only_hist())
        );
        assert_eq!(
            feature_schema_hash(&FeatureSpec::all()),
            feature_schema_hash(&FeatureSpec::cur_prev_nei())
        );
    }

    #[test]
    fn file_round_trip() {
        let art = toy_artifact();
        let path = std::env::temp_dir().join(format!(
            "streamd-artifact-test-{}.sbemodel",
            std::process::id()
        ));
        art.save(&path).unwrap();
        let back = PipelineArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.offenders(), art.offenders());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = PipelineArtifact::load(Path::new("/nonexistent/nope.sbemodel")).unwrap_err();
        assert!(matches!(err, StreamError::Io { .. }));
    }
}
