//! streamd — deterministic online streaming inference for SBE prediction.
//!
//! The batch pipeline in `sbepred` answers "how well would the paper's
//! models have predicted?"; this crate answers "what would deploying one
//! look like?". It provides:
//!
//! * [`artifact`] — a versioned, checksummed on-disk format for trained
//!   TwoStage pipelines (feature spec + offender set + scaler +
//!   classifier), with load-time rejection of corrupt, stale-format, or
//!   schema-drifted artifacts;
//! * [`engine`] — an incremental feature engine that reproduces the batch
//!   extractor's per-(app, node) sliding-window state event by event;
//! * [`serve`] — an event-stream replay driver with bounded request
//!   batching, per-stage obskit metrics, and a mitigation alert sink;
//!   its body is the public [`serve::StepScorer`], a step-style core
//!   that network feeders (the `sbed` daemon) drive one event at a
//!   time.
//!
//! The subsystem's contract is *stream/batch parity*: replaying a trace
//! through [`serve::serve`] yields bit-identical probabilities to the
//! batch `TwoStage` evaluation of the same window, at any thread count —
//! locked down by `tests/stream_batch_parity.rs` at the workspace root.

pub mod artifact;
pub mod engine;
pub mod serve;

mod error;

pub use error::StreamError;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, StreamError>;
