//! Artifact corruption suite: every way a shipped model file can be
//! damaged must surface as a *typed* error — never a panic, never a
//! silently misloaded pipeline.

use mlkit::artifact::{Envelope, FORMAT_VERSION};
use mlkit::dataset::Dataset;
use mlkit::linear::LogisticRegression;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use mlkit::MlError;
use sbepred::features::FeatureSpec;
use streamd::artifact::{feature_schema_hash, PipelineArtifact, PipelineModel, PIPELINE_KIND};
use streamd::StreamError;

fn shipped_bytes() -> Vec<u8> {
    let rows = vec![
        vec![0.0f32, 1.0],
        vec![1.0, 0.0],
        vec![0.5, 0.5],
        vec![0.9, 0.1],
    ];
    let y = vec![0.0, 1.0, 0.0, 1.0];
    let ds = Dataset::from_rows(&rows, &y).expect("dataset");
    let scaler = StandardScaler::fit(&ds).expect("scaler");
    let scaled = scaler.transform(&ds).expect("transform");
    let mut lr = LogisticRegression::new().epochs(50);
    lr.fit(&scaled).expect("fit");
    PipelineArtifact::new(
        FeatureSpec::all(),
        vec![3, 7],
        scaler,
        PipelineModel::Logistic(lr),
        1_000,
        "DS1",
    )
    .to_bytes()
    .expect("encode")
}

#[test]
fn every_truncation_is_a_typed_error_not_a_panic() {
    let bytes = shipped_bytes();
    for len in 0..bytes.len() {
        let err = PipelineArtifact::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes decoded successfully"));
        // Any truncation surfaces through the envelope layer (corrupt /
        // checksum) — before that, possibly as a version stub; all typed.
        assert!(
            matches!(err, StreamError::Ml(_)),
            "truncation to {len} gave unexpected error class: {err}"
        );
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = shipped_bytes();
    bytes[0] ^= 0xff;
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    assert!(
        matches!(err, StreamError::Ml(MlError::ArtifactCorrupt { .. })),
        "got {err}"
    );
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = shipped_bytes();
    // Version field sits right after the 8-byte magic.
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    match err {
        StreamError::Ml(MlError::ArtifactVersionMismatch { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected version mismatch, got {other}"),
    }
}

#[test]
fn stale_schema_hash_is_rejected() {
    let mut bytes = shipped_bytes();
    // Schema-hash field follows magic + version; flipping a bit simulates
    // an artifact whose feature schema drifted from the running build.
    bytes[12] ^= 0x01;
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    assert!(
        matches!(err, StreamError::Ml(MlError::ArtifactSchemaMismatch { .. })),
        "got {err}"
    );
}

#[test]
fn payload_bit_flip_fails_the_checksum() {
    let mut bytes = shipped_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    assert!(
        matches!(err, StreamError::Ml(MlError::ArtifactCorrupt { .. })),
        "got {err}"
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = shipped_bytes();
    bytes.extend_from_slice(b"extra");
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    assert!(
        matches!(err, StreamError::Ml(MlError::ArtifactCorrupt { .. })),
        "got {err}"
    );
}

#[test]
fn foreign_artifact_kind_is_rejected() {
    let payload = b"{}".to_vec();
    let bytes = Envelope::new("tscast/forecaster", 0, payload)
        .encode()
        .expect("encode");
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    match err {
        StreamError::Ml(MlError::ArtifactKindMismatch { expected, found }) => {
            assert_eq!(expected, PIPELINE_KIND);
            assert_eq!(found, "tscast/forecaster");
        }
        other => panic!("expected kind mismatch, got {other}"),
    }
}

#[test]
fn valid_envelope_with_undecodable_payload_is_a_payload_error() {
    let hash = feature_schema_hash(&FeatureSpec::all());
    let bytes = Envelope::new(PIPELINE_KIND, hash, b"not json at all".to_vec())
        .encode()
        .expect("encode");
    let err = PipelineArtifact::from_bytes(&bytes).expect_err("must reject");
    assert!(matches!(err, StreamError::Payload { .. }), "got {err}");
}
