//! driftd — online drift detection, champion/challenger retraining, and
//! zero-downtime artifact hot swap for the SBE scoring service.
//!
//! The DSN'18 models are trained on a frozen window, but a production
//! fleet drifts: applications come and go, offender populations shift,
//! and a champion's calibration decays. This crate closes the loop
//! deterministically:
//!
//! * [`monitor`] folds the serving event stream into fixed-memory
//!   feature-distribution (binned PSI) and calibration (reliability-bin
//!   ECE) statistics and fires a typed
//!   [`DriftVerdict`](monitor::DriftVerdict) on a pinned decision rule —
//!   integer and fixed-order `f64` arithmetic only, no wall clock, no
//!   sampling.
//! * [`window`] pairs scores with horizon-resolved SBE outcomes into a
//!   bounded labeled sample window.
//! * [`retrain`] trains a challenger on the window, judges it against
//!   the champion on a held-out time-ordered tail, and promotes on a
//!   pinned strictly-better rule, stamping the challenger's envelope
//!   with a lineage header (parent checksum, train-window bounds,
//!   generation).
//! * [`adapt`] drives all of it alongside a live
//!   [`StepScorer`](streamd::serve::StepScorer), hot-swapping the
//!   serving artifact at an event boundary so every score is
//!   attributable to exactly one generation and no in-flight request is
//!   dropped or double-scored.
//!
//! The whole loop is replay-deterministic: the same event stream yields
//! byte-identical verdict logs, promoted artifact bytes, and post-swap
//! scores at any `SBE_THREADS` setting.

pub mod adapt;
mod error;
pub mod monitor;
pub mod retrain;
pub mod window;

pub use error::DriftError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DriftError>;

/// The feature spec unit tests pin their synthetic artifacts to.
#[cfg(test)]
pub(crate) fn tests_spec() -> sbepred::features::FeatureSpec {
    sbepred::features::FeatureSpec::no_telemetry()
}
