//! The bounded retraining window: stage-2 scored requests accumulated
//! with their feature rows, and the pinned labeling rule that turns
//! job-boundary SBE visibility events into supervised labels.
//!
//! Labeling rule (pinned): a scored request for `(node, app)` launched
//! at minute `m` is **positive** iff an SBE visibility event with a
//! non-zero count arrives for the same `(node, app)` at a minute in
//! `[m, m + label_horizon_min)`, and **negative** once
//! `m + label_horizon_min` has passed without one. (Aprun ids do not
//! travel on the SBE path, so `(node, app, time-window)` is the finest
//! join available to the stream — the same visibility model the
//! simulator's job-boundary SBE counters give the batch labels.)
//!
//! Memory is bounded by [`WindowConfig::capacity`]: admitting a sample
//! beyond it evicts the oldest. Everything is keyed by a monotonic
//! admission id, so iteration order — and with it every downstream
//! statistic and retrain — is the admission order of the event stream.

use crate::{DriftError, Result};
use std::collections::BTreeMap;

/// Tuning for the retraining window.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Maximum samples held; admitting past this evicts the oldest.
    pub capacity: usize,
    /// Minutes after launch during which an SBE labels the sample
    /// positive; after the horizon an unlabeled sample resolves
    /// negative.
    pub label_horizon_min: u64,
}

impl WindowConfig {
    /// The pinned default: 4096 samples, 240-minute label horizon.
    pub fn pinned() -> WindowConfig {
        WindowConfig {
            capacity: 4096,
            label_horizon_min: 240,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.capacity == 0 || self.label_horizon_min == 0 {
            return Err(DriftError::InvalidConfig {
                reason: "window capacity and label_horizon_min must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// A labeled training row harvested from the window.
#[derive(Debug, Clone)]
pub struct LabeledRow {
    /// Launch minute.
    pub minute: u64,
    /// The node scored.
    pub node: u32,
    /// The application.
    pub app: u32,
    /// The raw (unscaled) feature row, assembled at launch time.
    pub row: Vec<f32>,
    /// The resolved outcome.
    pub label: bool,
}

/// One admitted sample.
#[derive(Debug, Clone)]
struct Sample {
    minute: u64,
    node: u32,
    app: u32,
    row: Vec<f32>,
    prob: Option<f32>,
    label: Option<bool>,
    reported: bool,
}

/// The bounded, label-resolving sample store.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    cfg: WindowConfig,
    /// Samples by admission id (ascending = admission order).
    samples: BTreeMap<u64, Sample>,
    /// Unlabeled sample ids by `(node, app)`, for SBE joins.
    open: BTreeMap<(u32, u32), Vec<u64>>,
    /// Scored-request join: `(aprun, node)` -> sample id awaiting its
    /// probability.
    awaiting_score: BTreeMap<(u32, u32), u64>,
    next_id: u64,
    /// Ids below this are past their horizon (negative-resolved).
    resolved_below: u64,
    n_evicted: u64,
}

impl SampleWindow {
    /// Builds an empty window.
    ///
    /// # Errors
    ///
    /// Config validation.
    pub fn new(cfg: WindowConfig) -> Result<SampleWindow> {
        cfg.validate()?;
        Ok(SampleWindow {
            cfg,
            samples: BTreeMap::new(),
            open: BTreeMap::new(),
            awaiting_score: BTreeMap::new(),
            next_id: 0,
            resolved_below: 0,
            n_evicted: 0,
        })
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the capacity bound since the last clear.
    pub fn n_evicted(&self) -> u64 {
        self.n_evicted
    }

    /// Admits one stage-2 scored request with its launch-time feature
    /// row (the probability attaches later, at flush time).
    pub fn admit(&mut self, minute: u64, aprun: u32, node: u32, app: u32, row: Vec<f32>) {
        if self.samples.len() >= self.cfg.capacity {
            self.evict_oldest();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.samples.insert(
            id,
            Sample {
                minute,
                node,
                app,
                row,
                prob: None,
                label: None,
                reported: false,
            },
        );
        self.open.entry((node, app)).or_default().push(id);
        self.awaiting_score.insert((aprun, node), id);
    }

    /// Attaches a flush-time probability to its sample. Returns a
    /// completed `(probability, label)` pair if the label had already
    /// resolved.
    pub fn attach_score(&mut self, aprun: u32, node: u32, prob: f32) -> Option<(f32, bool)> {
        let id = self.awaiting_score.remove(&(aprun, node))?;
        let s = self.samples.get_mut(&id)?;
        s.prob = Some(prob);
        complete(s)
    }

    /// Joins one SBE visibility event against the open samples for
    /// `(node, app)`: samples whose horizon covers `minute` resolve
    /// positive. Returns the completed `(probability, label)` pairs in
    /// admission order.
    pub fn observe_sbe(&mut self, minute: u64, node: u32, app: u32) -> Vec<(f32, bool)> {
        let mut done = Vec::new();
        let Some(ids) = self.open.get_mut(&(node, app)) else {
            return done;
        };
        let horizon = self.cfg.label_horizon_min;
        let samples = &mut self.samples;
        ids.retain(|id| {
            let Some(s) = samples.get_mut(id) else {
                return false;
            };
            if s.minute <= minute && minute < s.minute + horizon {
                s.label = Some(true);
                if let Some(pair) = complete(s) {
                    done.push(pair);
                }
                false
            } else {
                true
            }
        });
        if ids.is_empty() {
            self.open.remove(&(node, app));
        }
        done
    }

    /// Resolves every sample whose label horizon has fully passed by
    /// `now_min` and is still unlabeled as negative. Returns the
    /// completed `(probability, label)` pairs in admission order.
    pub fn resolve_upto(&mut self, now_min: u64) -> Vec<(f32, bool)> {
        let mut done = Vec::new();
        let horizon = self.cfg.label_horizon_min;
        let mut cursor = self.resolved_below;
        let ids: Vec<u64> = self
            .samples
            .range(self.resolved_below..)
            .take_while(|(_, s)| s.minute + horizon <= now_min)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            if let Some(s) = self.samples.get_mut(&id) {
                if s.label.is_none() {
                    s.label = Some(false);
                    remove_open(&mut self.open, (s.node, s.app), id);
                }
                if let Some(pair) = complete(s) {
                    done.push(pair);
                }
            }
            cursor = id + 1;
        }
        self.resolved_below = cursor;
        done
    }

    /// Harvests every fully resolved sample (probability attached,
    /// label decided) as training rows, in admission order.
    pub fn labeled_rows(&self) -> Vec<LabeledRow> {
        self.samples
            .values()
            .filter(|s| s.prob.is_some() && s.label.is_some())
            .map(|s| LabeledRow {
                minute: s.minute,
                node: s.node,
                app: s.app,
                row: s.row.clone(),
                label: s.label == Some(true),
            })
            .collect()
    }

    /// Empties the window (after a retrain attempt, so successive
    /// retrains see disjoint windows).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.open.clear();
        self.awaiting_score.clear();
        self.resolved_below = self.next_id;
        self.n_evicted = 0;
    }

    fn evict_oldest(&mut self) {
        let Some((&id, _)) = self.samples.first_key_value() else {
            return;
        };
        if let Some(s) = self.samples.remove(&id) {
            remove_open(&mut self.open, (s.node, s.app), id);
            // The awaiting-score entry (if any) dies with the sample;
            // attach_score tolerates the dangling id.
            self.n_evicted += 1;
        }
    }
}

/// Emits the sample's calibration pair exactly once, when both halves
/// are known.
fn complete(s: &mut Sample) -> Option<(f32, bool)> {
    if s.reported {
        return None;
    }
    let (Some(prob), Some(label)) = (s.prob, s.label) else {
        return None;
    };
    s.reported = true;
    Some((prob, label))
}

fn remove_open(open: &mut BTreeMap<(u32, u32), Vec<u64>>, key: (u32, u32), id: u64) {
    if let Some(ids) = open.get_mut(&key) {
        ids.retain(|&i| i != id);
        if ids.is_empty() {
            open.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SampleWindow {
        SampleWindow::new(WindowConfig {
            capacity: 4,
            label_horizon_min: 10,
        })
        .expect("window")
    }

    #[test]
    fn sbe_inside_horizon_labels_positive() {
        let mut w = tiny();
        w.admit(100, 1, 7, 3, vec![1.0]);
        assert!(
            w.attach_score(1, 7, 0.8).is_none(),
            "label not resolved yet"
        );
        let pairs = w.observe_sbe(105, 7, 3);
        assert_eq!(pairs, vec![(0.8, true)]);
        let rows = w.labeled_rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].label);
        assert_eq!(rows[0].node, 7);
    }

    #[test]
    fn sbe_outside_horizon_or_wrong_key_does_not_label() {
        let mut w = tiny();
        w.admit(100, 1, 7, 3, vec![1.0]);
        assert!(w.observe_sbe(110, 7, 3).is_empty(), "at horizon edge");
        assert!(w.observe_sbe(105, 8, 3).is_empty(), "wrong node");
        assert!(w.observe_sbe(105, 7, 4).is_empty(), "wrong app");
        assert!(w.labeled_rows().is_empty());
    }

    #[test]
    fn horizon_expiry_resolves_negative() {
        let mut w = tiny();
        w.admit(100, 1, 7, 3, vec![1.0]);
        w.attach_score(1, 7, 0.3);
        assert!(w.resolve_upto(109).is_empty(), "horizon not passed");
        let pairs = w.resolve_upto(110);
        assert_eq!(pairs, vec![(0.3, false)]);
        // A late SBE cannot flip a resolved sample.
        assert!(w.observe_sbe(111, 7, 3).is_empty());
        let rows = w.labeled_rows();
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].label);
    }

    #[test]
    fn pair_emitted_once_whichever_half_lands_last() {
        let mut w = tiny();
        // Label first (SBE), then score.
        w.admit(100, 1, 7, 3, vec![1.0]);
        assert!(w.observe_sbe(101, 7, 3).is_empty(), "no probability yet");
        assert_eq!(w.attach_score(1, 7, 0.9), Some((0.9, true)));
        assert!(w.resolve_upto(500).is_empty(), "already reported");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut w = tiny();
        for i in 0..5u32 {
            w.admit(100 + i as u64, i, i, 1, vec![i as f32]);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.n_evicted(), 1);
        // The evicted sample's joins are dead.
        assert!(w.attach_score(0, 0, 0.5).is_none());
        assert!(w.observe_sbe(100, 0, 1).is_empty());
    }

    #[test]
    fn clear_resets_for_the_next_window() {
        let mut w = tiny();
        w.admit(100, 1, 7, 3, vec![1.0]);
        w.attach_score(1, 7, 0.3);
        w.clear();
        assert!(w.is_empty());
        assert!(w.labeled_rows().is_empty());
        // Old joins are gone; new admissions work.
        w.admit(200, 2, 7, 3, vec![2.0]);
        assert_eq!(w.attach_score(2, 7, 0.6), None);
        assert_eq!(w.observe_sbe(201, 7, 3), vec![(0.6, true)]);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(SampleWindow::new(WindowConfig {
            capacity: 0,
            label_horizon_min: 10
        })
        .is_err());
    }
}
