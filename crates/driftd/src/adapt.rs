//! The continual-learning driver: drift-monitored serving with
//! champion/challenger retraining and zero-downtime hot swap.
//!
//! [`run_adapt`] replays the observed event stream through a
//! [`StepScorer`] exactly as `streamd::serve::serve_observed` does, and
//! runs a passive sidecar alongside it:
//!
//! * every stage-2 launch-node's **raw feature row** (assembled from the
//!   sidecar's own [`StreamFeatureEngine`], fed in the scorer's call
//!   order so both see identical state) goes to the
//!   [`DriftMonitor`](crate::monitor::DriftMonitor) and the
//!   [`SampleWindow`](crate::window::SampleWindow);
//! * emitted scores and horizon-resolved SBE labels pair up into
//!   calibration samples and labeled training rows;
//! * at pinned check ticks the monitor may fire a
//!   [`DriftVerdict`](crate::monitor::DriftVerdict); a verdict triggers
//!   one [`train_challenger`](crate::retrain::train_challenger) attempt;
//!   a promotion hot-swaps the scorer **between events** via
//!   [`StepScorer::prepare_swap`]/[`StepScorer::swap_artifact`], so the
//!   pending batch flushes under the generation that admitted it and
//!   every score is attributable to exactly one generation.
//!
//! Determinism: the sidecar owns no clocks and no hash-order iteration;
//! check ticks, label horizons, and retrain splits are all integer
//! arithmetic on trace minutes, so the same event stream produces
//! byte-identical verdict logs, promoted artifact bytes, and post-swap
//! scores at any `SBE_THREADS` setting. With drift detection never
//! firing (or [`AdaptConfig::check_every_min`] beyond the horizon), the
//! scored output is byte-identical to a plain `serve_observed` run.

use std::sync::Arc;

use crate::monitor::{DriftMonitor, DriftVerdict, MonitorConfig};
use crate::retrain::{RetrainConfig, RetrainOutcome};
use crate::window::{SampleWindow, WindowConfig};
use crate::{DriftError, Result};
use mlkit::hash::{fnv1a64, Fnv1a};
use obskit::Recorder;
use sbepred::features::{assemble_row, FeatureSpec, SampleFacts};
use streamd::artifact::PipelineArtifact;
use streamd::engine::StreamFeatureEngine;
use streamd::serve::{AlertSink, LaunchFacts, ScoredLaunch, ServeConfig, StepScorer};
use streamd::StreamError;
use titan_sim::apps::AppId;
use titan_sim::events::{EventStream, TraceEvent};
use titan_sim::topology::{NodeId, Topology};
use titan_sim::trace::TraceSet;

/// Everything one adaptive serve run needs. All sub-configs carry their
/// own pinned defaults; the composition here is itself part of the
/// pinned rule.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Scoring window, batching, threads, backend.
    pub serve: ServeConfig,
    /// Drift-decision thresholds.
    pub monitor: MonitorConfig,
    /// Labeling window capacity and horizon.
    pub window: WindowConfig,
    /// Challenger training and promotion.
    pub retrain: RetrainConfig,
    /// Drift checks run at minutes divisible by this (and only there —
    /// a pinned cadence keeps verdict minutes replayable).
    pub check_every_min: u64,
}

impl AdaptConfig {
    /// The pinned composition scoring `[from, until)`: default serving,
    /// pinned monitor/window/retrain, drift checked every 120 trace
    /// minutes.
    pub fn window(from: u64, until: u64) -> AdaptConfig {
        AdaptConfig {
            serve: ServeConfig::window(from, until),
            monitor: MonitorConfig::pinned(),
            window: WindowConfig::pinned(),
            retrain: RetrainConfig::pinned(),
            check_every_min: 120,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.check_every_min == 0 {
            return Err(DriftError::InvalidConfig {
                reason: "check_every_min must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One retrain attempt, as recorded in the drift log.
#[derive(Debug, Clone)]
pub struct RetrainRecord {
    /// Check-tick minute the attempt ran at.
    pub minute: u64,
    /// Deterministic outcome text (`skipped: …` or
    /// `evaluated champion_f1=… challenger_f1=… promoted=…`).
    pub outcome: String,
}

/// One committed promotion.
#[derive(Debug, Clone, Copy)]
pub struct PromotionRecord {
    /// Swap minute.
    pub minute: u64,
    /// The generation installed.
    pub generation: u32,
    /// Champion F1 on the held-out tail.
    pub champion_f1: f64,
    /// Challenger F1 on the held-out tail.
    pub challenger_f1: f64,
    /// FNV-1a of the promoted envelope bytes (the new champion
    /// checksum).
    pub artifact_fnv: u64,
    /// Train-window start recorded in the lineage.
    pub train_from_min: u64,
    /// Train-window end recorded in the lineage.
    pub train_until_min: u64,
    /// Training rows used.
    pub n_train: usize,
    /// Held-out rows used.
    pub n_holdout: usize,
}

/// What one adaptive serve run produced.
#[derive(Debug)]
pub struct AdaptReport {
    /// Every scored launch-node, sorted by `(minute, aprun, node)` —
    /// identical to `serve_observed` output when no swap fires.
    pub scored: Vec<ScoredLaunch>,
    /// Drift verdicts, in firing order.
    pub verdicts: Vec<DriftVerdict>,
    /// Retrain attempts, in order (one per verdict).
    pub retrains: Vec<RetrainRecord>,
    /// Committed promotions, in order.
    pub promotions: Vec<PromotionRecord>,
    /// The serving generation at end of stream.
    pub final_generation: u32,
    /// Stream events replayed.
    pub n_events: u64,
    /// Launch events replayed.
    pub n_launches: u64,
    /// SBE visibility events ingested.
    pub n_sbe_events: u64,
    /// Score requests issued.
    pub n_requests: u64,
    /// Requests that reached stage 2.
    pub n_stage2: u64,
    /// Batches flushed.
    pub n_batches: u64,
    /// Alerts emitted.
    pub n_alerts: u64,
    /// Labeled (score, outcome) pairs fed to the calibration monitor.
    pub n_pairs: u64,
    /// FNV-1a over the sorted scored rows — the replay-determinism
    /// fingerprint CI compares across thread counts.
    pub scores_fnv: u64,
}

impl AdaptReport {
    /// The deterministic drift log: one line per verdict, retrain, and
    /// promotion, in event order. CI byte-compares this across
    /// `SBE_THREADS` settings.
    pub fn drift_log(&self) -> String {
        let mut out = String::new();
        let mut retrains = self.retrains.iter();
        let mut promotions = self.promotions.iter().peekable();
        for v in &self.verdicts {
            out.push_str(&v.log_line());
            out.push('\n');
            if let Some(r) = retrains.next() {
                out.push_str(&format!("retrain minute={} {}\n", r.minute, r.outcome));
            }
            if let Some(p) = promotions.peek() {
                if p.minute == v.minute {
                    out.push_str(&format!(
                        "promote minute={} generation={} artifact_fnv={:#018x} \
                         window=[{}, {}) n_train={} n_holdout={}\n",
                        p.minute,
                        p.generation,
                        p.artifact_fnv,
                        p.train_from_min,
                        p.train_until_min,
                        p.n_train,
                        p.n_holdout
                    ));
                    promotions.next();
                }
            }
        }
        out.push_str(&format!(
            "final generation={} scores_fnv={:#018x} n_requests={} n_pairs={}\n",
            self.final_generation, self.scores_fnv, self.n_requests, self.n_pairs
        ));
        out
    }
}

/// Folds the sorted scored rows into the replay fingerprint.
fn fold_scores(scored: &[ScoredLaunch]) -> u64 {
    let mut h = Fnv1a::new();
    for s in scored {
        h.update(&s.minute.to_le_bytes());
        h.update(&s.aprun.to_le_bytes());
        h.update(&s.node.to_le_bytes());
        h.update(&s.probability.to_bits().to_le_bytes());
        h.update(&[u8::from(s.predicted), u8::from(s.stage2)]);
    }
    h.finish()
}

/// The passive sidecar: mirrors the scorer's feature-engine state and
/// owns the drift monitor and the labeling window.
struct Sidecar {
    engine: StreamFeatureEngine,
    monitor: DriftMonitor,
    window: SampleWindow,
    spec: FeatureSpec,
    topology: Topology,
    /// Scratch row; reused so the streaming path stays allocation-flat
    /// once warmed.
    row: Vec<f32>,
    /// How many of the driver's `scored` entries have been consumed.
    consumed: usize,
    n_pairs: u64,
}

impl Sidecar {
    fn new(spec: FeatureSpec, topology: Topology, cfg: &AdaptConfig) -> Result<Sidecar> {
        if spec.needs_telemetry() {
            return Err(DriftError::InvalidConfig {
                reason: "adaptive serving requires a telemetry-free feature spec \
                         (sensor windows are not replayable into the drift window)"
                    .into(),
            });
        }
        let n_features = spec.feature_names().len();
        Ok(Sidecar {
            engine: StreamFeatureEngine::new(),
            monitor: DriftMonitor::new(n_features, cfg.monitor)?,
            window: SampleWindow::new(cfg.window)?,
            spec,
            topology,
            row: Vec::new(),
            consumed: 0,
            n_pairs: 0,
        })
    }

    /// Mirrors [`StepScorer::step_launch`]: observe first, then assemble
    /// rows for in-window stage-2 nodes in the scorer's sorted order.
    fn observe_launch(
        &mut self,
        launch: &LaunchFacts<'_>,
        serve: &ServeConfig,
        champion: &PipelineArtifact,
        rec: &mut Recorder,
    ) -> Result<()> {
        self.engine
            .observe_launch_parts(launch.minute, launch.app, launch.nodes);
        if launch.minute < serve.score_from_min || launch.minute >= serve.score_until_min {
            return Ok(());
        }
        let mut nodes = launch.nodes.to_vec();
        nodes.sort_unstable();
        for node in nodes {
            if !champion.is_offender(node.0) {
                continue;
            }
            let facts = SampleFacts {
                app: launch.app,
                prev_app: self.engine.previous_app(node.0),
                runtime_min: launch.runtime_min,
                n_nodes: launch.nodes.len() as u32,
                core_util: launch.core_util,
                mem_util: launch.mem_util,
                loc: self.topology.location(node).map_err(StreamError::from)?,
                node: node.0,
            };
            let hist = self.engine.hist_counts(
                &self.spec,
                node,
                AppId(launch.app),
                launch.nodes,
                launch.minute,
            );
            self.row.clear();
            assemble_row(&self.spec, &facts, None, &hist, &mut self.row)
                .map_err(StreamError::from)?;
            self.monitor.observe_row(&self.row);
            rec.incr("driftd.rows", 1);
            self.window.admit(
                launch.minute,
                launch.aprun,
                node.0,
                launch.app,
                self.row.clone(),
            );
        }
        Ok(())
    }

    /// Ingests an SBE event: history for feature parity, plus positive
    /// labels for any open window samples on this `(node, app)`.
    fn observe_sbe(&mut self, minute: u64, node: NodeId, app: AppId, count: u32) -> Result<()> {
        self.engine.observe_sbe(minute, node, app, count)?;
        if count > 0 {
            let pairs = self.window.observe_sbe(minute, node.0, app.0);
            self.feed_pairs(&pairs);
        }
        Ok(())
    }

    /// Attaches newly emitted scores to their window samples.
    fn consume_scored(&mut self, scored: &[ScoredLaunch], rec: &mut Recorder) {
        while self.consumed < scored.len() {
            let s = scored[self.consumed];
            self.consumed += 1;
            if !s.stage2 {
                continue;
            }
            if let Some(pair) = self.window.attach_score(s.aprun, s.node, s.probability) {
                self.feed_pairs(&[pair]);
            }
            rec.incr("driftd.scores_attached", 1);
        }
    }

    fn feed_pairs(&mut self, pairs: &[(f32, bool)]) {
        for &(prob, label) in pairs {
            self.monitor.observe_labeled(prob, label);
            self.n_pairs += 1;
        }
    }
}

/// Runs the adaptive serving loop over an observed trace. `artifact` is
/// the generation-0 champion; promoted challengers take over mid-stream
/// without dropping or double-scoring any pending request.
///
/// # Errors
///
/// Config validation, a telemetry-needing feature spec, and any scorer,
/// trainer, or sink error. Retrain *skips* (thin or single-class
/// windows) are recorded, not errors.
pub fn run_adapt(
    trace: &TraceSet,
    artifact: &PipelineArtifact,
    cfg: &AdaptConfig,
    sink: &mut dyn AlertSink,
    rec: &mut Recorder,
) -> Result<AdaptReport> {
    cfg.validate()?;
    let topology = trace.config().topology;
    let mut step = StepScorer::new(artifact, &cfg.serve, topology, Some(trace))?;
    let mut sidecar = Sidecar::new(*artifact.spec(), topology, cfg)?;
    // The champion's identity is the FNV of its (root-lineage) envelope
    // — the value every successor must name as parent.
    let mut champion_checksum = fnv1a64(&artifact.to_bytes()?);

    let span = rec.span_start("driftd.adapt");
    let mut scored: Vec<ScoredLaunch> = Vec::new();
    let mut verdicts: Vec<DriftVerdict> = Vec::new();
    let mut retrains: Vec<RetrainRecord> = Vec::new();
    let mut promotions: Vec<PromotionRecord> = Vec::new();
    let mut n_events = 0u64;
    let mut n_launches = 0u64;
    let mut n_sbe_events = 0u64;

    let stream = EventStream::new(trace).map_err(StreamError::from)?;
    let catalog = trace.catalog();

    for event in stream {
        n_events += 1;
        match event {
            TraceEvent::Tick { minute } => {
                step.step_tick(minute, &mut scored, sink, rec)?;
                sidecar.engine.end_minute();
                sidecar.consume_scored(&scored, rec);
                if minute > 0 && minute.is_multiple_of(cfg.check_every_min) {
                    check_drift(
                        minute,
                        cfg,
                        &mut step,
                        &mut sidecar,
                        &mut champion_checksum,
                        &mut scored,
                        &mut verdicts,
                        &mut retrains,
                        &mut promotions,
                        sink,
                        rec,
                    )?;
                    sidecar.consume_scored(&scored, rec);
                }
            }
            TraceEvent::Launch { minute, aprun } => {
                n_launches += 1;
                let run = trace.aprun(aprun).map_err(StreamError::from)?;
                let profile = catalog.profile(run.app_id).map_err(StreamError::from)?;
                let facts = LaunchFacts {
                    minute,
                    aprun: aprun.0,
                    app: run.app_id.0,
                    runtime_min: run.runtime_min(),
                    core_util: profile.core_util,
                    mem_util: profile.mem_util,
                    nodes: &run.nodes,
                };
                step.step_launch(&facts, &mut scored, sink, rec)?;
                sidecar.observe_launch(&facts, &cfg.serve, step.artifact(), rec)?;
                sidecar.consume_scored(&scored, rec);
            }
            TraceEvent::SbeVisible {
                minute,
                node,
                app,
                count,
                ..
            } => {
                n_sbe_events += 1;
                step.step_sbe(minute, node, app, count, rec)?;
                sidecar.observe_sbe(minute, node, app, count)?;
            }
        }
    }
    step.step_finish(&mut scored, sink, rec)?;
    sidecar.engine.end_minute();
    sidecar.consume_scored(&scored, rec);

    scored.sort_unstable_by_key(|s| (s.minute, s.aprun, s.node));
    let scores_fnv = fold_scores(&scored);

    let stats = step.step_stats();
    rec.gauge("driftd.generation", f64::from(step.generation()));
    rec.span_end(span);

    Ok(AdaptReport {
        final_generation: step.generation(),
        scored,
        verdicts,
        retrains,
        promotions,
        n_events,
        n_launches,
        n_sbe_events,
        n_requests: stats.n_requests,
        n_stage2: stats.n_stage2,
        n_batches: stats.n_batches,
        n_alerts: stats.n_alerts,
        n_pairs: sidecar.n_pairs,
        scores_fnv,
    })
}

/// One pinned check tick: resolve overdue labels, ask the monitor for a
/// verdict, and on a verdict run exactly one retrain attempt. Whatever
/// the outcome, the monitor rebaselines and the window clears — the
/// next verdict must be earned on fresh evidence, never on the residue
/// that already fired.
#[allow(clippy::too_many_arguments)]
fn check_drift(
    minute: u64,
    cfg: &AdaptConfig,
    step: &mut StepScorer<'_>,
    sidecar: &mut Sidecar,
    champion_checksum: &mut u64,
    scored: &mut Vec<ScoredLaunch>,
    verdicts: &mut Vec<DriftVerdict>,
    retrains: &mut Vec<RetrainRecord>,
    promotions: &mut Vec<PromotionRecord>,
    sink: &mut dyn AlertSink,
    rec: &mut Recorder,
) -> Result<()> {
    let pairs = sidecar.window.resolve_upto(minute);
    sidecar.feed_pairs(&pairs);

    let Some(verdict) = sidecar.monitor.check(minute, step.generation()) else {
        return Ok(());
    };
    rec.incr("driftd.verdicts", 1);
    verdicts.push(verdict);

    let rows = sidecar.window.labeled_rows();
    let outcome = crate::retrain::train_challenger(
        &rows,
        step.artifact(),
        *champion_checksum,
        step.generation(),
        &cfg.retrain,
    )?;
    rec.incr("driftd.retrains", 1);
    match outcome {
        RetrainOutcome::Skipped { reason } => {
            retrains.push(RetrainRecord {
                minute,
                outcome: format!("skipped: {reason}"),
            });
        }
        RetrainOutcome::Evaluated(ev) => {
            retrains.push(RetrainRecord {
                minute,
                outcome: format!(
                    "evaluated champion_f1={:.6} challenger_f1={:.6} promoted={}",
                    ev.champion_f1,
                    ev.challenger_f1,
                    ev.promoted.is_some()
                ),
            });
            if let Some(promo) = ev.promoted {
                let generation = promo.lineage.generation;
                let prepared = step.prepare_swap(Arc::new(promo.artifact), generation)?;
                // The swap flushes the pending batch under the outgoing
                // generation before committing — zero dropped, zero
                // double-scored.
                step.swap_artifact(minute, prepared, scored, sink, rec)?;
                *champion_checksum = promo.checksum;
                rec.incr("driftd.promotions", 1);
                promotions.push(PromotionRecord {
                    minute,
                    generation,
                    champion_f1: ev.champion_f1,
                    challenger_f1: ev.challenger_f1,
                    artifact_fnv: promo.checksum,
                    train_from_min: ev.train_from_min,
                    train_until_min: ev.train_until_min,
                    n_train: ev.n_train,
                    n_holdout: ev.n_holdout,
                });
            }
        }
    }
    // Restart the evidence stream under whichever champion now serves.
    sidecar.monitor.rebaseline();
    sidecar.window.clear();
    Ok(())
}
