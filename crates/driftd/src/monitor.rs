//! The drift monitor: fixed-memory feature-distribution and calibration
//! statistics folded from the scored stream, and the pinned decision
//! rule that turns them into a [`DriftVerdict`].
//!
//! Two statistics, both deterministic (integer counts plus fixed-order
//! f64 folds, no wall clock):
//!
//! * **Binned PSI per feature.** The first [`MonitorConfig::baseline_rows`]
//!   stage-2 feature rows after (re)arming are frozen into per-feature
//!   equal-width histograms (bin edges fixed from the baseline's observed
//!   min/max). Every later row bins into a "current" histogram, and the
//!   population-stability index between the two is computed bin by bin,
//!   feature by feature, in index order with a fixed probability floor.
//! * **Reliability-bin calibration error.** Every resolved
//!   (predicted probability, observed label) pair lands in an equal-width
//!   probability bin; the expected calibration error is the
//!   count-weighted mean gap between each bin's mean prediction and its
//!   positive rate.
//!
//! The pinned rule ([`DriftMonitor::check`]): a verdict fires iff the
//! current window holds at least `min_current` rows AND
//! (`max_psi >= psi_threshold` OR (`n_labeled >= min_labeled` AND
//! `ece >= ece_threshold`)). After a verdict the caller re-arms the
//! monitor ([`DriftMonitor::rebaseline`]): statistics restart from
//! scratch so one drift episode yields one verdict, not one per check.

use crate::{DriftError, Result};

/// Probability floor for PSI terms: empty bins contribute a bounded,
/// deterministic penalty instead of an infinity.
const PSI_FLOOR: f64 = 1e-6;

/// Tuning for the drift monitor. All thresholds are part of the pinned
/// decision rule: two runs over the same scored stream with the same
/// config produce identical verdicts.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Histogram bins per feature for the PSI statistic.
    pub n_bins: usize,
    /// Rows frozen into the baseline when (re)arming.
    pub baseline_rows: u64,
    /// Minimum rows in the current window before a verdict may fire.
    pub min_current: u64,
    /// PSI at or above which a feature counts as shifted.
    pub psi_threshold: f64,
    /// Reliability bins for the calibration statistic.
    pub calib_bins: usize,
    /// Minimum resolved (prediction, label) pairs before the
    /// calibration arm of the rule may fire.
    pub min_labeled: u64,
    /// Expected calibration error at or above which calibration counts
    /// as decayed.
    pub ece_threshold: f64,
}

impl MonitorConfig {
    /// The pinned default rule: 10 PSI bins over a 256-row baseline,
    /// verdicts gated on 128 current rows, PSI >= 0.2 (the classic
    /// "significant shift" convention) or ECE >= 0.15 over at least 64
    /// labeled pairs in 10 reliability bins.
    pub fn pinned() -> MonitorConfig {
        MonitorConfig {
            n_bins: 10,
            baseline_rows: 256,
            min_current: 128,
            psi_threshold: 0.2,
            calib_bins: 10,
            min_labeled: 64,
            ece_threshold: 0.15,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_bins < 2 || self.calib_bins < 2 {
            return Err(DriftError::InvalidConfig {
                reason: "n_bins and calib_bins must be at least 2".into(),
            });
        }
        if self.baseline_rows == 0 || self.min_current == 0 {
            return Err(DriftError::InvalidConfig {
                reason: "baseline_rows and min_current must be at least 1".into(),
            });
        }
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.psi_threshold) || !positive(self.ece_threshold) {
            return Err(DriftError::InvalidConfig {
                reason: "psi_threshold and ece_threshold must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Which arm (or arms) of the pinned rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTrigger {
    /// A feature's PSI crossed its threshold.
    FeatureShift,
    /// The calibration error crossed its threshold.
    CalibrationDecay,
    /// Both arms fired at the same check.
    Both,
}

impl DriftTrigger {
    fn name(self) -> &'static str {
        match self {
            DriftTrigger::FeatureShift => "feature-shift",
            DriftTrigger::CalibrationDecay => "calibration-decay",
            DriftTrigger::Both => "feature-shift+calibration-decay",
        }
    }
}

/// A typed drift verdict: the monitor's statistics at the check that
/// fired, plus which arm of the rule fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftVerdict {
    /// Trace minute of the check.
    pub minute: u64,
    /// Serving generation the verdict indicts.
    pub generation: u32,
    /// Largest per-feature PSI at the check.
    pub max_psi: f64,
    /// Index (feature-name order) of the feature with the largest PSI.
    pub worst_feature: usize,
    /// Expected calibration error at the check (0 when unlabeled).
    pub ece: f64,
    /// Rows in the current window.
    pub n_current: u64,
    /// Resolved (prediction, label) pairs folded so far.
    pub n_labeled: u64,
    /// Which arm(s) fired.
    pub trigger: DriftTrigger,
}

impl DriftVerdict {
    /// One deterministic log line (fixed-precision floats), the unit of
    /// the drift-verdict log CI byte-compares across thread counts.
    pub fn log_line(&self) -> String {
        format!(
            "verdict minute={} generation={} trigger={} max_psi={:.6} worst_feature={} \
             ece={:.6} n_current={} n_labeled={}",
            self.minute,
            self.generation,
            self.trigger.name(),
            self.max_psi,
            self.worst_feature,
            self.ece,
            self.n_current,
            self.n_labeled
        )
    }
}

/// Frozen-baseline histogram state: edges plus baseline/current counts,
/// flattened `n_features * n_bins`.
#[derive(Debug, Clone)]
struct ArmedStats {
    lo: Vec<f32>,
    width: Vec<f32>,
    baseline: Vec<u64>,
    baseline_total: u64,
    current: Vec<u64>,
    current_total: u64,
}

/// The feature-distribution half: collecting a baseline, or armed with
/// frozen edges.
#[derive(Debug, Clone)]
enum Distribution {
    Collecting { rows: Vec<Vec<f32>> },
    Armed(ArmedStats),
}

/// One reliability bin's accumulators.
#[derive(Debug, Clone, Copy, Default)]
struct CalibBin {
    n: u64,
    sum_pred: f64,
    n_pos: u64,
}

/// The online drift monitor. Feed it every stage-2 feature row
/// ([`DriftMonitor::observe_row`]) and every resolved label pair
/// ([`DriftMonitor::observe_labeled`]); ask it for a verdict at the
/// decision cadence ([`DriftMonitor::check`]).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: MonitorConfig,
    n_features: usize,
    dist: Distribution,
    calib: Vec<CalibBin>,
    n_labeled: u64,
}

impl DriftMonitor {
    /// Builds a monitor for `n_features`-wide rows.
    ///
    /// # Errors
    ///
    /// Config validation; a zero-width row.
    pub fn new(n_features: usize, cfg: MonitorConfig) -> Result<DriftMonitor> {
        cfg.validate()?;
        if n_features == 0 {
            return Err(DriftError::InvalidConfig {
                reason: "monitor needs at least one feature".into(),
            });
        }
        Ok(DriftMonitor {
            cfg,
            n_features,
            dist: Distribution::Collecting { rows: Vec::new() },
            calib: vec![CalibBin::default(); cfg.calib_bins],
            n_labeled: 0,
        })
    }

    /// Rows folded into the current (post-baseline) window.
    pub fn n_current(&self) -> u64 {
        match &self.dist {
            Distribution::Collecting { .. } => 0,
            Distribution::Armed(a) => a.current_total,
        }
    }

    /// Resolved label pairs folded since the last (re)arm.
    pub fn n_labeled(&self) -> u64 {
        self.n_labeled
    }

    /// Whether the baseline is frozen and the monitor is accumulating a
    /// current window.
    pub fn armed(&self) -> bool {
        matches!(self.dist, Distribution::Armed(_))
    }

    /// Folds one stage-2 feature row. The first `baseline_rows` rows
    /// after (re)arming build the baseline; each later row bins into
    /// the current window. O(n_features) with no allocation once armed.
    pub fn observe_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.n_features);
        match &mut self.dist {
            Distribution::Collecting { rows } => {
                rows.push(row.to_vec());
                if rows.len() as u64 >= self.cfg.baseline_rows {
                    let frozen = std::mem::take(rows);
                    self.dist = Distribution::Armed(freeze_baseline(
                        &frozen,
                        self.n_features,
                        self.cfg.n_bins,
                    ));
                }
            }
            Distribution::Armed(armed) => {
                fold_current(armed, row, self.cfg.n_bins);
            }
        }
    }

    /// Folds one resolved (predicted probability, observed label) pair
    /// into the reliability bins. O(1), no allocation.
    pub fn observe_labeled(&mut self, prob: f32, label: bool) {
        let b = calib_bin(prob, self.cfg.calib_bins);
        // calib has exactly calib_bins slots and calib_bin clamps.
        if let Some(bin) = self.calib.get_mut(b) {
            bin.n += 1;
            bin.sum_pred += prob as f64;
            if label {
                bin.n_pos += 1;
            }
        }
        self.n_labeled += 1;
    }

    /// The largest per-feature PSI and its feature index, computed in
    /// fixed (feature, bin) order. `None` while the baseline is still
    /// collecting.
    pub fn max_psi(&self) -> Option<(f64, usize)> {
        let Distribution::Armed(a) = &self.dist else {
            return None;
        };
        if a.current_total == 0 {
            return None;
        }
        let mut max = f64::MIN;
        let mut worst = 0usize;
        for f in 0..self.n_features {
            let mut psi = 0.0f64;
            for b in 0..self.cfg.n_bins {
                let i = f * self.cfg.n_bins + b;
                let p = (a.baseline.get(i).copied().unwrap_or(0) as f64 / a.baseline_total as f64)
                    .max(PSI_FLOOR);
                let q = (a.current.get(i).copied().unwrap_or(0) as f64 / a.current_total as f64)
                    .max(PSI_FLOOR);
                psi += (p - q) * (p / q).ln();
            }
            if psi > max {
                max = psi;
                worst = f;
            }
        }
        Some((max, worst))
    }

    /// The expected calibration error over the reliability bins, in bin
    /// order. 0 when no pair has resolved.
    pub fn ece(&self) -> f64 {
        let total: u64 = self.calib.iter().map(|b| b.n).sum();
        if total == 0 {
            return 0.0;
        }
        let mut ece = 0.0f64;
        for bin in &self.calib {
            if bin.n == 0 {
                continue;
            }
            let mean_pred = bin.sum_pred / bin.n as f64;
            let pos_rate = bin.n_pos as f64 / bin.n as f64;
            ece += (bin.n as f64 / total as f64) * (mean_pred - pos_rate).abs();
        }
        ece
    }

    /// Applies the pinned decision rule at `minute` against serving
    /// `generation`. Returns a verdict iff the rule fires; the caller is
    /// expected to [`DriftMonitor::rebaseline`] after acting on one.
    pub fn check(&self, minute: u64, generation: u32) -> Option<DriftVerdict> {
        let (max_psi, worst_feature) = self.max_psi()?;
        let n_current = self.n_current();
        if n_current < self.cfg.min_current {
            return None;
        }
        let ece = self.ece();
        let shift = max_psi >= self.cfg.psi_threshold;
        let decay = self.n_labeled >= self.cfg.min_labeled && ece >= self.cfg.ece_threshold;
        let trigger = match (shift, decay) {
            (true, true) => DriftTrigger::Both,
            (true, false) => DriftTrigger::FeatureShift,
            (false, true) => DriftTrigger::CalibrationDecay,
            (false, false) => return None,
        };
        Some(DriftVerdict {
            minute,
            generation,
            max_psi,
            worst_feature,
            ece,
            n_current,
            n_labeled: self.n_labeled,
            trigger,
        })
    }

    /// Re-arms after a verdict: every statistic restarts from scratch,
    /// and the next `baseline_rows` rows freeze a fresh baseline (the
    /// post-drift — possibly post-swap — regime becomes the new
    /// reference).
    pub fn rebaseline(&mut self) {
        self.dist = Distribution::Collecting { rows: Vec::new() };
        for bin in &mut self.calib {
            *bin = CalibBin::default();
        }
        self.n_labeled = 0;
    }
}

/// Freezes baseline histograms from the collected rows: equal-width
/// bins over each feature's observed [min, max] (degenerate features
/// get a unit width so everything lands in bin 0 on both sides).
fn freeze_baseline(rows: &[Vec<f32>], n_features: usize, n_bins: usize) -> ArmedStats {
    let mut lo = vec![f32::MAX; n_features];
    let mut hi = vec![f32::MIN; n_features];
    for row in rows {
        for f in 0..n_features {
            let v = row.get(f).copied().unwrap_or(0.0);
            if v < lo[f] {
                lo[f] = v;
            }
            if v > hi[f] {
                hi[f] = v;
            }
        }
    }
    let width: Vec<f32> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| {
            let w = (h - l) / n_bins as f32;
            if w > 0.0 {
                w
            } else {
                1.0
            }
        })
        .collect();
    let mut baseline = vec![0u64; n_features * n_bins];
    for row in rows {
        for f in 0..n_features {
            let v = row.get(f).copied().unwrap_or(0.0);
            let b = feature_bin(v, lo[f], width[f], n_bins);
            if let Some(slot) = baseline.get_mut(f * n_bins + b) {
                *slot += 1;
            }
        }
    }
    ArmedStats {
        lo,
        width,
        baseline,
        baseline_total: rows.len() as u64,
        current: vec![0u64; n_features * n_bins],
        current_total: 0,
    }
}

/// Folds one row into the armed current histograms. Hot-path root
/// (D006/D007/D008): runs once per stage-2 request on the streaming
/// path, so it must not panic, allocate, or consult ambient state.
fn fold_current(armed: &mut ArmedStats, row: &[f32], n_bins: usize) {
    for (f, &v) in row.iter().enumerate() {
        let lo = armed.lo.get(f).copied().unwrap_or(0.0);
        let width = armed.width.get(f).copied().unwrap_or(1.0);
        let b = feature_bin(v, lo, width, n_bins);
        if let Some(slot) = armed.current.get_mut(f * n_bins + b) {
            *slot += 1;
        }
    }
    armed.current_total += 1;
}

/// Bins a value against frozen edges, clamping out-of-range values into
/// the end bins.
fn feature_bin(v: f32, lo: f32, width: f32, n_bins: usize) -> usize {
    let idx = ((v - lo) / width) as i64;
    idx.clamp(0, n_bins as i64 - 1) as usize
}

/// Bins a probability into `[0, 1)` reliability bins (1.0 clamps into
/// the last bin).
fn calib_bin(prob: f32, n_bins: usize) -> usize {
    let idx = (prob as f64 * n_bins as f64) as i64;
    idx.clamp(0, n_bins as i64 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_monitor(cfg: MonitorConfig) -> DriftMonitor {
        let mut m = DriftMonitor::new(2, cfg).expect("monitor");
        for i in 0..cfg.baseline_rows {
            let x = (i % 16) as f32 / 16.0;
            m.observe_row(&[x, 1.0 - x]);
        }
        assert!(m.armed());
        m
    }

    fn small_cfg() -> MonitorConfig {
        MonitorConfig {
            baseline_rows: 64,
            min_current: 32,
            min_labeled: 8,
            ..MonitorConfig::pinned()
        }
    }

    #[test]
    fn identical_distribution_has_near_zero_psi() {
        let cfg = small_cfg();
        let mut m = armed_monitor(cfg);
        for i in 0..64u64 {
            let x = (i % 16) as f32 / 16.0;
            m.observe_row(&[x, 1.0 - x]);
        }
        let (psi, _) = m.max_psi().expect("armed");
        assert!(psi < 0.05, "psi {psi} should be near zero");
        assert!(m.check(100, 0).is_none());
    }

    #[test]
    fn shifted_distribution_fires_feature_shift() {
        let cfg = small_cfg();
        let mut m = armed_monitor(cfg);
        for _ in 0..64u64 {
            // Everything piles into the top bin of feature 0.
            m.observe_row(&[0.99, 0.5]);
        }
        let v = m.check(100, 3).expect("verdict");
        assert_eq!(v.trigger, DriftTrigger::FeatureShift);
        assert_eq!(v.worst_feature, 0);
        assert_eq!(v.generation, 3);
        assert!(v.max_psi >= cfg.psi_threshold);
        assert!(v.log_line().contains("trigger=feature-shift"));
    }

    #[test]
    fn miscalibration_fires_calibration_decay() {
        let cfg = small_cfg();
        let mut m = armed_monitor(cfg);
        for i in 0..64u64 {
            let x = (i % 16) as f32 / 16.0;
            m.observe_row(&[x, 1.0 - x]);
        }
        // Confidently wrong: high predictions, all-negative labels.
        for _ in 0..16 {
            m.observe_labeled(0.95, false);
        }
        let v = m.check(7, 0).expect("verdict");
        assert_eq!(v.trigger, DriftTrigger::CalibrationDecay);
        assert!(v.ece > 0.9);
        assert_eq!(v.n_labeled, 16);
    }

    #[test]
    fn perfect_calibration_has_zero_ece() {
        let cfg = small_cfg();
        let mut m = DriftMonitor::new(1, cfg).expect("monitor");
        // Bin [0.4, 0.5): predictions of 0.45, 45% positive is
        // unreachable with integers; use 0.5 exactly in [0.5, 0.6)
        // with half positives and mean prediction 0.5... ECE contribution
        // |0.5 - 0.5| = 0.
        for i in 0..20 {
            m.observe_labeled(0.5, i % 2 == 0);
        }
        assert!(m.ece() < 1e-9);
    }

    #[test]
    fn verdict_needs_min_current_rows() {
        let cfg = small_cfg();
        let mut m = armed_monitor(cfg);
        for _ in 0..(cfg.min_current - 1) {
            m.observe_row(&[0.99, 0.5]);
        }
        assert!(m.check(5, 0).is_none(), "below min_current must not fire");
        m.observe_row(&[0.99, 0.5]);
        assert!(m.check(5, 0).is_some());
    }

    #[test]
    fn rebaseline_restarts_everything() {
        let cfg = small_cfg();
        let mut m = armed_monitor(cfg);
        for _ in 0..64 {
            m.observe_row(&[0.99, 0.5]);
            m.observe_labeled(0.9, false);
        }
        assert!(m.check(9, 0).is_some());
        m.rebaseline();
        assert!(!m.armed());
        assert_eq!(m.n_current(), 0);
        assert_eq!(m.n_labeled(), 0);
        assert!(m.check(10, 0).is_none());
    }

    #[test]
    fn degenerate_constant_feature_is_psi_stable() {
        let cfg = small_cfg();
        let mut m = DriftMonitor::new(1, cfg).expect("monitor");
        for _ in 0..cfg.baseline_rows {
            m.observe_row(&[3.25]);
        }
        for _ in 0..64 {
            m.observe_row(&[3.25]);
        }
        let (psi, _) = m.max_psi().expect("armed");
        assert!(psi.abs() < 1e-9);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = MonitorConfig::pinned();
        cfg.n_bins = 1;
        assert!(DriftMonitor::new(4, cfg).is_err());
        let mut cfg = MonitorConfig::pinned();
        cfg.psi_threshold = 0.0;
        assert!(DriftMonitor::new(4, cfg).is_err());
        assert!(DriftMonitor::new(0, MonitorConfig::pinned()).is_err());
    }
}
