//! The champion/challenger retrain loop.
//!
//! On a drift verdict, [`train_challenger`] fits a challenger pipeline
//! on the accumulated window (scaler + GBDT through `mlkit::hist`, the
//! exact histogram engine), evaluates champion vs. challenger on a
//! held-out horizon — the time-ordered **tail** of the window, so the
//! challenger is judged on data strictly newer than anything it trained
//! on — and promotes on the pinned rule: the challenger ships iff its
//! holdout F1 strictly beats the champion's.
//!
//! Determinism: the split point is integer arithmetic on the window
//! length, the trainer runs `TrainMode::Exact` with a seed derived from
//! the generation counter, and both evaluations are fixed-order folds —
//! so the same window bytes produce the same promoted artifact bytes at
//! any worker thread count.
//!
//! A promoted challenger is encoded with a lineage header naming the
//! champion (parent checksum, train-window bounds, generation + 1), so
//! hot-swap targets can verify succession before committing.

use crate::window::LabeledRow;
use crate::{DriftError, Result};
use mlkit::artifact::Lineage;
use mlkit::dataset::Dataset;
use mlkit::hash::fnv1a64;
use mlkit::metrics::ConfusionMatrix;
use mlkit::model::Classifier;
use mlkit::scaler::StandardScaler;
use streamd::artifact::{PipelineArtifact, PipelineModel};

/// Tuning for the retrain loop. The split fractions and hyperparameters
/// are part of the pinned rule.
#[derive(Debug, Clone, Copy)]
pub struct RetrainConfig {
    /// Minimum fully labeled samples before a retrain is attempted.
    pub min_labeled: usize,
    /// Held-out tail size in per-mille of the window (time-ordered:
    /// the newest samples are held out).
    pub holdout_per_mille: u32,
    /// Lower bound on the held-out tail.
    pub min_holdout: usize,
    /// Seed base; the challenger for generation `g` trains with
    /// `seed_base ^ g`.
    pub seed_base: u64,
    /// Boosting rounds for the challenger GBDT.
    pub n_trees: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Positive-class weight (the window inherits the trace's class
    /// imbalance).
    pub pos_weight: f32,
    /// Worker threads for training (inherit the serving thread config
    /// so one knob drives the whole subsystem).
    pub threads: parkit::Threads,
}

impl RetrainConfig {
    /// The pinned default: 25% time-ordered holdout (min 32), a
    /// 60-tree depth-4 GBDT at the paper's learning rate and class
    /// weight, exact histogram training.
    pub fn pinned() -> RetrainConfig {
        RetrainConfig {
            min_labeled: 128,
            holdout_per_mille: 250,
            min_holdout: 32,
            seed_base: 0x5eed_d41f,
            n_trees: 60,
            max_depth: 4,
            learning_rate: 0.1,
            min_samples_leaf: 10,
            pos_weight: 2.0,
            threads: parkit::Threads::Auto,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.holdout_per_mille == 0 || self.holdout_per_mille >= 1000 {
            return Err(DriftError::InvalidConfig {
                reason: "holdout_per_mille must be in [1, 999]".into(),
            });
        }
        if self.min_labeled == 0 || self.min_holdout == 0 || self.n_trees == 0 {
            return Err(DriftError::InvalidConfig {
                reason: "min_labeled, min_holdout, and n_trees must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// A promoted challenger, ready to hot-swap: the artifact, its lineage,
/// the encoded envelope bytes, and their checksum (the value successors
/// must name as parent).
#[derive(Debug, Clone)]
pub struct Promotion {
    /// The challenger pipeline.
    pub artifact: PipelineArtifact,
    /// Its succession header.
    pub lineage: Lineage,
    /// The full encoded envelope (what a hot-swap target consumes).
    pub bytes: Vec<u8>,
    /// FNV-1a over `bytes` — the new champion checksum.
    pub checksum: u64,
}

/// A completed champion-vs-challenger evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Champion F1 on the held-out tail.
    pub champion_f1: f64,
    /// Challenger F1 on the held-out tail.
    pub challenger_f1: f64,
    /// Training rows used.
    pub n_train: usize,
    /// Held-out rows used.
    pub n_holdout: usize,
    /// Train-window bounds `[from, until)` recorded in the lineage.
    pub train_from_min: u64,
    /// End of the train window (last labeled minute + 1).
    pub train_until_min: u64,
    /// The promoted challenger, iff it won.
    pub promoted: Option<Promotion>,
}

/// What one retrain attempt produced.
#[derive(Debug, Clone)]
pub enum RetrainOutcome {
    /// The window could not support a fair contest; the champion stays
    /// unchallenged.
    Skipped {
        /// Why (deterministic text; part of the drift log).
        reason: String,
    },
    /// A challenger was trained and judged.
    Evaluated(Box<Evaluation>),
}

/// Trains a challenger on the window and judges it against the
/// champion. `champion_checksum`/`champion_generation` are the serving
/// artifact's identity, used to stamp the challenger's lineage.
///
/// # Errors
///
/// Trainer, scaler, and encoding failures. Window-shape problems
/// (too few labels, single-class splits) are [`RetrainOutcome::Skipped`],
/// not errors — the serving loop keeps going.
pub fn train_challenger(
    rows: &[LabeledRow],
    champion: &PipelineArtifact,
    champion_checksum: u64,
    champion_generation: u32,
    cfg: &RetrainConfig,
) -> Result<RetrainOutcome> {
    cfg.validate()?;
    let n = rows.len();
    if n < cfg.min_labeled {
        return Ok(skip(format!(
            "window has {n} labeled samples, need {}",
            cfg.min_labeled
        )));
    }
    let n_holdout = ((n as u64 * cfg.holdout_per_mille as u64) / 1000) as usize;
    let n_holdout = n_holdout.max(cfg.min_holdout);
    if n_holdout >= n {
        return Ok(skip(format!(
            "holdout tail ({n_holdout}) would consume the whole window ({n})"
        )));
    }
    let n_train = n - n_holdout;
    let (train, holdout) = rows.split_at(n_train);

    let train_pos = train.iter().filter(|r| r.label).count();
    if train_pos == 0 || train_pos == n_train {
        return Ok(skip(format!(
            "train slice is single-class ({train_pos}/{n_train} positive)"
        )));
    }
    let holdout_pos = holdout.iter().filter(|r| r.label).count();
    if holdout_pos == 0 {
        return Ok(skip("holdout tail has no positives to judge on".into()));
    }

    let train_ds = dataset(train)?;
    let holdout_ds = dataset(holdout)?;

    // Challenger: fresh scaler + GBDT fitted on the train slice only.
    let scaler = StandardScaler::fit(&train_ds)?;
    let generation = champion_generation.wrapping_add(1);
    let mut model = mlkit::gbdt::Gbdt::new()
        .n_trees(cfg.n_trees)
        .max_depth(cfg.max_depth)
        .learning_rate(cfg.learning_rate)
        .min_samples_leaf(cfg.min_samples_leaf)
        .pos_weight(cfg.pos_weight)
        .seed(cfg.seed_base ^ generation as u64)
        .threads(cfg.threads)
        .train_mode(mlkit::hist::TrainMode::Exact);
    model.fit(&scaler.transform(&train_ds)?)?;

    // Both contenders judged on the same held-out tail, each through
    // its own scaler (a pipeline is scaler + model; swapping one
    // without the other would misscale every feature).
    let champion_f1 = pipeline_f1(champion.scaler(), champion.model(), &holdout_ds)?;
    let challenger_model = PipelineModel::Gbdt(model);
    let challenger_f1 = pipeline_f1(&scaler, &challenger_model, &holdout_ds)?;

    let train_from_min = rows.first().map_or(0, |r| r.minute);
    let train_until_min = rows.last().map_or(0, |r| r.minute) + 1;

    // Pinned promotion rule: the challenger must strictly beat the
    // champion on the held-out horizon.
    let promoted = if challenger_f1 > champion_f1 {
        // Stage 1 learns too: the challenger's offender set is the
        // champion's plus every node the window saw go positive.
        let mut offenders: Vec<u32> = champion.offenders().to_vec();
        offenders.extend(rows.iter().filter(|r| r.label).map(|r| r.node));
        let artifact = PipelineArtifact::new(
            *champion.spec(),
            offenders,
            scaler,
            challenger_model,
            train_until_min,
            format!("adapt-g{generation}"),
        );
        let lineage = Lineage::child_of(
            champion_checksum,
            champion_generation,
            train_from_min,
            train_until_min,
        );
        let bytes = artifact.to_bytes_with_lineage(lineage)?;
        let checksum = fnv1a64(&bytes);
        Some(Promotion {
            artifact,
            lineage,
            bytes,
            checksum,
        })
    } else {
        None
    };

    Ok(RetrainOutcome::Evaluated(Box::new(Evaluation {
        champion_f1,
        challenger_f1,
        n_train,
        n_holdout,
        train_from_min,
        train_until_min,
        promoted,
    })))
}

fn skip(reason: String) -> RetrainOutcome {
    RetrainOutcome::Skipped { reason }
}

fn dataset(rows: &[LabeledRow]) -> Result<Dataset> {
    let x: Vec<Vec<f32>> = rows.iter().map(|r| r.row.clone()).collect();
    let y: Vec<f32> = rows
        .iter()
        .map(|r| if r.label { 1.0 } else { 0.0 })
        .collect();
    Ok(Dataset::from_rows(&x, &y).map_err(streamd::StreamError::from)?)
}

/// Scores `holdout` through one pipeline (scaler then model, hard
/// decisions at the model threshold) and returns its F1.
fn pipeline_f1(scaler: &StandardScaler, model: &PipelineModel, holdout: &Dataset) -> Result<f64> {
    let scaled = scaler
        .transform(holdout)
        .map_err(streamd::StreamError::from)?;
    let proba = model.predict_proba(&scaled).map_err(DriftError::from)?;
    let threshold = model.threshold();
    let pred: Vec<f32> = proba
        .iter()
        .map(|&p| if p >= threshold { 1.0 } else { 0.0 })
        .collect();
    let cm = ConfusionMatrix::from_predictions(holdout.y(), &pred)
        .map_err(streamd::StreamError::from)?;
    Ok(cm.f1())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic separable window: label = (x0 > 0), 2 features.
    fn synthetic_rows(n: usize, flip: bool) -> Vec<LabeledRow> {
        (0..n)
            .map(|i| {
                // Deterministic pseudo-random walk over a fixed lattice.
                let x0 = ((i * 37 + 11) % 101) as f32 / 50.0 - 1.0;
                let x1 = ((i * 53 + 29) % 97) as f32 / 48.0 - 1.0;
                let mut label = x0 > 0.0;
                if flip {
                    label = !label;
                }
                LabeledRow {
                    minute: 100 + i as u64,
                    node: (i % 16) as u32,
                    app: 1,
                    row: vec![x0, x1],
                    label,
                }
            })
            .collect()
    }

    /// A champion deliberately trained on inverted labels: any honest
    /// challenger beats it.
    fn inverted_champion(rows: &[LabeledRow]) -> PipelineArtifact {
        let x: Vec<Vec<f32>> = rows.iter().map(|r| r.row.clone()).collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| if r.label { 0.0 } else { 1.0 })
            .collect();
        let ds = Dataset::from_rows(&x, &y).expect("dataset");
        let scaler = StandardScaler::fit(&ds).expect("scaler");
        let mut m = mlkit::gbdt::Gbdt::new()
            .n_trees(10)
            .max_depth(3)
            .min_samples_leaf(2)
            .seed(9);
        m.fit(&scaler.transform(&ds).expect("transform"))
            .expect("fit");
        PipelineArtifact::new(
            crate::tests_spec(),
            (0..16).collect(),
            scaler,
            PipelineModel::Gbdt(m),
            100,
            "test-champion",
        )
    }

    fn cfg() -> RetrainConfig {
        RetrainConfig {
            min_labeled: 64,
            min_holdout: 16,
            n_trees: 10,
            max_depth: 3,
            min_samples_leaf: 2,
            ..RetrainConfig::pinned()
        }
    }

    #[test]
    fn too_few_labels_skips() {
        let rows = synthetic_rows(10, false);
        let champ = inverted_champion(&rows);
        let out = train_challenger(&rows, &champ, 1, 0, &cfg()).expect("retrain");
        assert!(matches!(out, RetrainOutcome::Skipped { ref reason } if reason.contains("10")));
    }

    #[test]
    fn single_class_train_skips() {
        let mut rows = synthetic_rows(128, false);
        for r in &mut rows {
            r.label = false;
        }
        let champ = inverted_champion(&synthetic_rows(128, false));
        let out = train_challenger(&rows, &champ, 1, 0, &cfg()).expect("retrain");
        assert!(
            matches!(out, RetrainOutcome::Skipped { ref reason } if reason.contains("class") || reason.contains("positives"))
        );
    }

    #[test]
    fn honest_challenger_beats_inverted_champion_and_carries_lineage() {
        let rows = synthetic_rows(256, false);
        let champ = inverted_champion(&rows);
        let champ_checksum = 0xfeed_beef_u64;
        let out = train_challenger(&rows, &champ, champ_checksum, 4, &cfg()).expect("retrain");
        let RetrainOutcome::Evaluated(ev) = out else {
            panic!("expected an evaluation");
        };
        assert!(
            ev.challenger_f1 > ev.champion_f1,
            "challenger {} must beat inverted champion {}",
            ev.challenger_f1,
            ev.champion_f1
        );
        let promo = ev.promoted.as_ref().expect("promotion");
        assert_eq!(promo.lineage.parent_checksum, champ_checksum);
        assert_eq!(promo.lineage.generation, 5);
        assert_eq!(promo.lineage.train_from_min, 100);
        assert_eq!(promo.lineage.train_until_min, 100 + 256);
        promo
            .lineage
            .verify_succession(champ_checksum, 4)
            .expect("succession verifies");
        assert_eq!(promo.checksum, fnv1a64(&promo.bytes));
        // The promoted bytes round-trip with their lineage intact.
        let (decoded, lineage) =
            PipelineArtifact::from_bytes_with_lineage(&promo.bytes).expect("decode");
        assert_eq!(lineage, promo.lineage);
        assert_eq!(decoded.split_name(), "adapt-g5");
    }

    #[test]
    fn retrain_is_deterministic() {
        let rows = synthetic_rows(256, false);
        let champ = inverted_champion(&rows);
        let a = train_challenger(&rows, &champ, 1, 0, &cfg()).expect("retrain");
        let b = train_challenger(&rows, &champ, 1, 0, &cfg()).expect("retrain");
        let (RetrainOutcome::Evaluated(a), RetrainOutcome::Evaluated(b)) = (a, b) else {
            panic!("expected evaluations");
        };
        assert_eq!(a.champion_f1.to_bits(), b.champion_f1.to_bits());
        assert_eq!(a.challenger_f1.to_bits(), b.challenger_f1.to_bits());
        let (pa, pb) = (a.promoted.expect("promo"), b.promoted.expect("promo"));
        assert_eq!(pa.bytes, pb.bytes, "promoted artifact bytes must match");
        assert_eq!(pa.checksum, pb.checksum);
    }

    #[test]
    fn losing_challenger_is_not_promoted() {
        // Champion trained on the true labels of the SAME rows it is
        // judged on; a small challenger can at best tie, never strictly
        // beat it... unless it does — so assert consistency instead:
        // promotion happens iff challenger_f1 > champion_f1.
        let rows = synthetic_rows(256, false);
        let mut champ_rows = rows.clone();
        champ_rows.truncate(192);
        let champ = {
            let x: Vec<Vec<f32>> = champ_rows.iter().map(|r| r.row.clone()).collect();
            let y: Vec<f32> = champ_rows
                .iter()
                .map(|r| if r.label { 1.0 } else { 0.0 })
                .collect();
            let ds = Dataset::from_rows(&x, &y).expect("dataset");
            let scaler = StandardScaler::fit(&ds).expect("scaler");
            let mut m = mlkit::gbdt::Gbdt::new()
                .n_trees(40)
                .max_depth(4)
                .min_samples_leaf(2)
                .seed(9);
            m.fit(&scaler.transform(&ds).expect("transform"))
                .expect("fit");
            PipelineArtifact::new(
                crate::tests_spec(),
                (0..16).collect(),
                scaler,
                PipelineModel::Gbdt(m),
                100,
                "strong-champion",
            )
        };
        let out = train_challenger(&rows, &champ, 1, 0, &cfg()).expect("retrain");
        let RetrainOutcome::Evaluated(ev) = out else {
            panic!("expected an evaluation");
        };
        assert_eq!(
            ev.promoted.is_some(),
            ev.challenger_f1 > ev.champion_f1,
            "promotion iff strict improvement"
        );
    }
}
