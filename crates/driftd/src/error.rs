use std::fmt;
use streamd::StreamError;

/// Errors produced by the continual-learning subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum DriftError {
    /// An underlying streaming/ML/simulator error.
    Stream(StreamError),
    /// The drift, window, or retrain configuration is unusable.
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for DriftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriftError::Stream(e) => write!(f, "stream error: {e}"),
            DriftError::InvalidConfig { reason } => {
                write!(f, "invalid drift config: {reason}")
            }
        }
    }
}

impl std::error::Error for DriftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriftError::Stream(e) => Some(e),
            DriftError::InvalidConfig { .. } => None,
        }
    }
}

impl From<StreamError> for DriftError {
    fn from(e: StreamError) -> DriftError {
        DriftError::Stream(e)
    }
}

impl From<mlkit::MlError> for DriftError {
    fn from(e: mlkit::MlError) -> DriftError {
        DriftError::Stream(StreamError::Ml(e))
    }
}

impl From<sbepred::PredError> for DriftError {
    fn from(e: sbepred::PredError) -> DriftError {
        DriftError::Stream(StreamError::Pred(e))
    }
}

impl From<titan_sim::SimError> for DriftError {
    fn from(e: titan_sim::SimError) -> DriftError {
        DriftError::Stream(StreamError::Sim(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_sources_and_displays() {
        let e = DriftError::from(mlkit::MlError::NotFitted);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("stream error"));
        let e = DriftError::InvalidConfig {
            reason: "psi bins 0".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("psi bins 0"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DriftError>();
    }
}
