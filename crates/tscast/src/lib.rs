//! `tscast` — small time-series forecasting toolkit.
//!
//! The paper's prediction framework (§VI-A, §VIII) notes that some input
//! features — the temperature and power profile *during* a run — are not
//! known before the run starts, and proposes forecasting them with
//! time-series tools (ARMA/ARIMA and friends). This crate provides those
//! tools:
//!
//! * [`ar::ArModel`] — autoregressive AR(p) models fit by Yule-Walker
//!   equations solved with Levinson-Durbin recursion,
//! * [`ar::DiffForecaster`] — first-order differencing around any
//!   forecaster (an "ARI" model) for trend removal,
//! * [`smooth::Ewma`] and [`smooth::HoltLinear`] — exponential smoothing,
//! * [`eval`] — walk-forward backtesting with MAE/RMSE/MAPE.
//!
//! # Example
//!
//! ```
//! use tscast::ar::ArModel;
//! use tscast::Forecaster;
//!
//! // A noiseless AR(1) process x_t = 0.8 x_{t-1}.
//! let mut series = vec![1.0f64];
//! for _ in 0..200 {
//!     series.push(series.last().unwrap() * 0.8);
//! }
//! let model = ArModel::fit(&series, 1)?;
//! let next = model.forecast(&series, 1)?[0];
//! assert!((next - series.last().unwrap() * 0.8).abs() < 0.05);
//! # Ok::<(), tscast::TsError>(())
//! ```

pub mod ar;
pub mod eval;
pub mod smooth;

mod error;

pub use error::TsError;

/// Crate-wide `Result` alias using [`TsError`].
pub type Result<T> = std::result::Result<T, TsError>;

/// A forecaster that extends a history `horizon` steps into the future.
pub trait Forecaster {
    /// Forecasts `horizon` future values given the observed `history`.
    ///
    /// # Errors
    ///
    /// Returns an error when the history is shorter than the model's
    /// requirement or `horizon` is zero.
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>>;

    /// Short human-readable name of the method.
    fn name(&self) -> &'static str;
}
