//! Exponential smoothing forecasters.

use crate::{Forecaster, Result, TsError};
use serde::{Deserialize, Serialize};

/// Simple exponential smoothing (EWMA): flat forecasts at the smoothed
/// level `l_t = alpha x_t + (1 - alpha) l_{t-1}`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA smoother.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidParameter`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Result<Ewma> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TsError::InvalidParameter {
                name: "alpha",
                reason: format!("must be in (0, 1], got {alpha}"),
            });
        }
        Ok(Ewma { alpha })
    }

    /// The smoothing weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The smoothed level after consuming the whole history.
    pub fn level(&self, history: &[f64]) -> Option<f64> {
        let mut it = history.iter();
        let mut level = *it.next()?;
        for &x in it {
            level = self.alpha * x + (1.0 - self.alpha) * level;
        }
        Some(level)
    }
}

impl Forecaster for Ewma {
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if horizon == 0 {
            return Err(TsError::InvalidParameter {
                name: "horizon",
                reason: "must be >= 1".into(),
            });
        }
        let level = self
            .level(history)
            .ok_or(TsError::SeriesTooShort { needed: 1, got: 0 })?;
        Ok(vec![level; horizon])
    }

    fn name(&self) -> &'static str {
        "EWMA"
    }
}

/// Holt's linear trend method: level + trend smoothing, linear forecasts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
}

impl HoltLinear {
    /// Creates a Holt smoother.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidParameter`] unless both weights are in
    /// `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Result<HoltLinear> {
        for (name, v) in [("alpha", alpha), ("beta", beta)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(TsError::InvalidParameter {
                    name: if name == "alpha" { "alpha" } else { "beta" },
                    reason: format!("must be in (0, 1], got {v}"),
                });
            }
        }
        Ok(HoltLinear { alpha, beta })
    }

    /// Final `(level, trend)` after consuming the history.
    ///
    /// Returns `None` for histories shorter than two observations.
    pub fn state(&self, history: &[f64]) -> Option<(f64, f64)> {
        if history.len() < 2 {
            return None;
        }
        let mut level = history[0];
        let mut trend = history[1] - history[0];
        for &x in &history[1..] {
            let prev_level = level;
            level = self.alpha * x + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        Some((level, trend))
    }
}

impl Forecaster for HoltLinear {
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if horizon == 0 {
            return Err(TsError::InvalidParameter {
                name: "horizon",
                reason: "must be >= 1".into(),
            });
        }
        let (level, trend) = self.state(history).ok_or(TsError::SeriesTooShort {
            needed: 2,
            got: history.len(),
        })?;
        Ok((1..=horizon).map(|h| level + trend * h as f64).collect())
    }

    fn name(&self) -> &'static str {
        "Holt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_constant_series_is_identity() {
        let e = Ewma::new(0.3).unwrap();
        let fc = e.forecast(&[5.0; 20], 3).unwrap();
        assert_eq!(fc, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn ewma_level_tracks_recent_values() {
        let e = Ewma::new(0.5).unwrap();
        // Step from 0 to 10: level should be much closer to 10 at the end.
        let mut series = vec![0.0; 10];
        series.extend(vec![10.0; 10]);
        let level = e.level(&series).unwrap();
        assert!(level > 9.9);
    }

    #[test]
    fn ewma_validates() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        let e = Ewma::new(0.5).unwrap();
        assert!(e.forecast(&[], 1).is_err());
        assert!(e.forecast(&[1.0], 0).is_err());
    }

    #[test]
    fn holt_extrapolates_linear_trend() {
        let h = HoltLinear::new(0.8, 0.8).unwrap();
        let series: Vec<f64> = (0..50).map(|t| 3.0 * t as f64 + 1.0).collect();
        let fc = h.forecast(&series, 3).unwrap();
        for (i, v) in fc.iter().enumerate() {
            let expect = 3.0 * (50 + i) as f64 + 1.0;
            assert!((v - expect).abs() < 0.5, "step {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn holt_validates() {
        assert!(HoltLinear::new(0.0, 0.5).is_err());
        assert!(HoltLinear::new(0.5, 2.0).is_err());
        let h = HoltLinear::new(0.5, 0.5).unwrap();
        assert!(h.forecast(&[1.0], 2).is_err());
        assert!(h.forecast(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn forecaster_names() {
        assert_eq!(Ewma::new(0.2).unwrap().name(), "EWMA");
        assert_eq!(HoltLinear::new(0.2, 0.2).unwrap().name(), "Holt");
    }
}
