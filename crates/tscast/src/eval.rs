//! Walk-forward backtesting of forecasters.

use crate::{Forecaster, Result, TsError};
use serde::{Deserialize, Serialize};

/// Aggregate forecast-error metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ForecastErrors {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute percentage error (skips zero actuals).
    pub mape: f64,
    /// Number of (forecast, actual) pairs evaluated.
    pub n: usize,
}

/// Computes [`ForecastErrors`] from paired forecasts and actuals.
///
/// # Errors
///
/// Returns [`TsError::InvalidParameter`] when lengths differ or both are
/// empty.
pub fn forecast_errors(forecast: &[f64], actual: &[f64]) -> Result<ForecastErrors> {
    if forecast.len() != actual.len() || forecast.is_empty() {
        return Err(TsError::InvalidParameter {
            name: "forecast",
            reason: format!(
                "need equal non-empty lengths, got {} and {}",
                forecast.len(),
                actual.len()
            ),
        });
    }
    let n = forecast.len();
    let mut abs = 0.0;
    let mut sq = 0.0;
    let mut pct = 0.0;
    let mut pct_n = 0usize;
    for (&f, &a) in forecast.iter().zip(actual) {
        let e = f - a;
        abs += e.abs();
        sq += e * e;
        if a != 0.0 {
            pct += (e / a).abs();
            pct_n += 1;
        }
    }
    Ok(ForecastErrors {
        mae: abs / n as f64,
        rmse: (sq / n as f64).sqrt(),
        mape: if pct_n == 0 { 0.0 } else { pct / pct_n as f64 },
        n,
    })
}

/// Walk-forward backtest: at every step `t` in the evaluation window, fit
/// nothing new but call `model.forecast(&series[..t], horizon)` and compare
/// the first forecast against `series[t]`.
///
/// `min_history` observations are reserved before evaluation starts.
///
/// # Errors
///
/// Returns [`TsError::SeriesTooShort`] when no evaluation points remain and
/// propagates forecaster errors.
pub fn backtest<F: Forecaster>(
    model: &F,
    series: &[f64],
    min_history: usize,
) -> Result<ForecastErrors> {
    if series.len() <= min_history {
        return Err(TsError::SeriesTooShort {
            needed: min_history + 1,
            got: series.len(),
        });
    }
    let mut forecasts = Vec::new();
    let mut actuals = Vec::new();
    for t in min_history..series.len() {
        let fc = model.forecast(&series[..t], 1)?;
        forecasts.push(fc[0]);
        actuals.push(series[t]);
    }
    forecast_errors(&forecasts, &actuals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smooth::Ewma;

    #[test]
    fn errors_zero_for_perfect_forecast() {
        let e = forecast_errors(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.rmse, 0.0);
        assert_eq!(e.mape, 0.0);
        assert_eq!(e.n, 2);
    }

    #[test]
    fn errors_hand_computed() {
        let e = forecast_errors(&[2.0, 4.0], &[1.0, 2.0]).unwrap();
        assert_eq!(e.mae, 1.5);
        assert!((e.rmse - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(e.mape, 1.0); // |1/1| and |2/2| -> mean 1.0
    }

    #[test]
    fn errors_validate_inputs() {
        assert!(forecast_errors(&[1.0], &[1.0, 2.0]).is_err());
        assert!(forecast_errors(&[], &[]).is_err());
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let e = forecast_errors(&[1.0, 3.0], &[0.0, 2.0]).unwrap();
        assert_eq!(e.mape, 0.5);
    }

    #[test]
    fn backtest_constant_series_is_perfect_for_ewma() {
        let model = Ewma::new(0.5).unwrap();
        let series = vec![4.0; 30];
        let e = backtest(&model, &series, 5).unwrap();
        assert!(e.mae < 1e-12);
        assert_eq!(e.n, 25);
    }

    #[test]
    fn backtest_needs_evaluation_points() {
        let model = Ewma::new(0.5).unwrap();
        assert!(matches!(
            backtest(&model, &[1.0, 2.0], 5),
            Err(TsError::SeriesTooShort { .. })
        ));
    }
}
