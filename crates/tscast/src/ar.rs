//! Autoregressive models.
//!
//! AR(p) coefficients are estimated from the sample autocovariance via the
//! Yule-Walker equations, solved with the Levinson-Durbin recursion. A
//! first-order differencing wrapper ([`DiffForecaster`]) turns any
//! forecaster into an "integrated" variant for trending series (the "I" of
//! ARIMA).

use crate::{Forecaster, Result, TsError};
use serde::{Deserialize, Serialize};

/// Sample autocovariance at lags `0..=max_lag` of a mean-removed series.
pub fn autocovariance(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n == 0 {
        return vec![0.0; max_lag + 1];
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for t in lag..n {
            acc += (series[t] - mean) * (series[t - lag] - mean);
        }
        out.push(acc / n as f64);
    }
    out
}

/// Solves the Yule-Walker equations for AR(p) coefficients with the
/// Levinson-Durbin recursion.
///
/// Returns `(coefficients, innovation_variance)`.
///
/// # Errors
///
/// Returns [`TsError::NumericalError`] when the zero-lag autocovariance is
/// non-positive (constant series).
pub fn levinson_durbin(autocov: &[f64], order: usize) -> Result<(Vec<f64>, f64)> {
    if autocov.len() <= order {
        return Err(TsError::InvalidParameter {
            name: "order",
            reason: format!(
                "need {} autocovariances for order {order}, got {}",
                order + 1,
                autocov.len()
            ),
        });
    }
    if autocov[0] <= 0.0 {
        return Err(TsError::NumericalError(
            "zero-lag autocovariance must be positive (series is constant?)".into(),
        ));
    }
    let mut phi = vec![0.0f64; order];
    let mut prev = vec![0.0f64; order];
    let mut err = autocov[0];
    for k in 0..order {
        let mut acc = autocov[k + 1];
        for j in 0..k {
            acc -= prev[j] * autocov[k - j];
        }
        let reflection = acc / err;
        phi[..k].copy_from_slice(&prev[..k]);
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        err *= 1.0 - reflection * reflection;
        if err <= 0.0 {
            // Perfectly predictable series; clamp to a tiny positive value.
            err = f64::EPSILON;
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Ok((phi, err))
}

/// A fitted AR(p) model: `x_t = mean + sum_i phi_i (x_{t-i} - mean) + e_t`.
///
/// # Example
///
/// ```
/// use tscast::ar::ArModel;
/// use tscast::Forecaster;
///
/// let series: Vec<f64> = (0..100).map(|t| (t as f64 * 0.3).sin()).collect();
/// let model = ArModel::fit(&series, 4)?;
/// let fc = model.forecast(&series, 5)?;
/// assert_eq!(fc.len(), 5);
/// # Ok::<(), tscast::TsError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArModel {
    coefficients: Vec<f64>,
    mean: f64,
    innovation_variance: f64,
}

impl ArModel {
    /// Fits an AR(`order`) model to `series` by Yule-Walker.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::InvalidParameter`] for order 0,
    /// [`TsError::SeriesTooShort`] when `series.len() < 2 * (order + 1)`,
    /// and numerical errors for constant series.
    pub fn fit(series: &[f64], order: usize) -> Result<ArModel> {
        if order == 0 {
            return Err(TsError::InvalidParameter {
                name: "order",
                reason: "must be >= 1".into(),
            });
        }
        let needed = 2 * (order + 1);
        if series.len() < needed {
            return Err(TsError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let autocov = autocovariance(series, order);
        let (coefficients, innovation_variance) = levinson_durbin(&autocov, order)?;
        Ok(ArModel {
            coefficients,
            mean,
            innovation_variance,
        })
    }

    /// The fitted AR coefficients `phi_1..phi_p`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Series mean used for centring.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Estimated innovation (residual) variance.
    pub fn innovation_variance(&self) -> f64 {
        self.innovation_variance
    }

    /// Model order `p`.
    pub fn order(&self) -> usize {
        self.coefficients.len()
    }

    /// `true` when all characteristic roots are inside the unit circle
    /// (checked via the sufficient condition `sum |phi_i| < 1` first and a
    /// companion-matrix power iteration fallback).
    pub fn is_stationary(&self) -> bool {
        let l1: f64 = self.coefficients.iter().map(|c| c.abs()).sum();
        if l1 < 1.0 {
            return true;
        }
        // Power iteration on the companion matrix to approximate the
        // spectral radius.
        let p = self.coefficients.len();
        let mut v = vec![1.0f64; p];
        let mut radius = 0.0;
        for _ in 0..200 {
            let mut next = vec![0.0f64; p];
            for (j, &c) in self.coefficients.iter().enumerate() {
                next[0] += c * v[j];
            }
            next[1..p].copy_from_slice(&v[..p - 1]);
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                return true;
            }
            for x in next.iter_mut() {
                *x /= norm;
            }
            radius = norm / v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v = next;
        }
        radius < 1.0 + 1e-9
    }
}

impl Forecaster for ArModel {
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if horizon == 0 {
            return Err(TsError::InvalidParameter {
                name: "horizon",
                reason: "must be >= 1".into(),
            });
        }
        let p = self.coefficients.len();
        if history.len() < p {
            return Err(TsError::SeriesTooShort {
                needed: p,
                got: history.len(),
            });
        }
        // Centered recent window, extended with forecasts as we go.
        let mut buf: Vec<f64> = history[history.len() - p..]
            .iter()
            .map(|&x| x - self.mean)
            .collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut next = 0.0;
            for (i, &phi) in self.coefficients.iter().enumerate() {
                next += phi * buf[buf.len() - 1 - i];
            }
            out.push(next + self.mean);
            buf.push(next);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "AR"
    }
}

/// Wraps a forecaster to operate on first differences, re-integrating the
/// forecasts (turns AR(p) into ARI(p, 1)).
#[derive(Debug, Clone)]
pub struct DiffForecaster<F> {
    inner: F,
}

impl<F: Forecaster> DiffForecaster<F> {
    /// Wraps `inner` so it forecasts differenced values.
    pub fn new(inner: F) -> DiffForecaster<F> {
        DiffForecaster { inner }
    }

    /// Returns the wrapped forecaster.
    pub fn into_inner(self) -> F {
        self.inner
    }

    /// First differences of a series (`len - 1` values).
    pub fn difference(series: &[f64]) -> Vec<f64> {
        series.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

impl<F: Forecaster> Forecaster for DiffForecaster<F> {
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if history.len() < 2 {
            return Err(TsError::SeriesTooShort {
                needed: 2,
                got: history.len(),
            });
        }
        let diffs = Self::difference(history);
        let dfc = self.inner.forecast(&diffs, horizon)?;
        // Guarded: `history.len() >= 2` was checked above.
        let mut level = history.last().copied().unwrap_or_default();
        Ok(dfc
            .into_iter()
            .map(|d| {
                level += d;
                level
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "ARI"
    }
}

/// Fits AR models of orders `1..=max_order` and selects the order with the
/// lowest AIC (`n ln sigma^2 + 2p`).
///
/// # Errors
///
/// Propagates fit errors; returns [`TsError::InvalidParameter`] when
/// `max_order == 0`.
pub fn fit_best_order(series: &[f64], max_order: usize) -> Result<ArModel> {
    if max_order == 0 {
        return Err(TsError::InvalidParameter {
            name: "max_order",
            reason: "must be >= 1".into(),
        });
    }
    let n = series.len() as f64;
    let mut best: Option<(f64, ArModel)> = None;
    let mut last_err = None;
    for p in 1..=max_order {
        match ArModel::fit(series, p) {
            Ok(m) => {
                let aic = n * m.innovation_variance().max(f64::EPSILON).ln() + 2.0 * p as f64;
                if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                    best = Some((aic, m));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some((_, m)) => Ok(m),
        None => Err(last_err.unwrap_or(TsError::SeriesTooShort {
            needed: 4,
            got: series.len(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(phi: f64, n: usize) -> Vec<f64> {
        // Deterministic pseudo-noise so the test is reproducible without rand.
        let mut x = 0.0f64;
        let mut out = Vec::with_capacity(n);
        let mut state = 0x2545f4914f6cdd1du64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            x = phi * x + noise;
            out.push(x);
        }
        out
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = ar1_series(0.7, 5000);
        let model = ArModel::fit(&series, 1).unwrap();
        assert!(
            (model.coefficients()[0] - 0.7).abs() < 0.05,
            "phi = {}",
            model.coefficients()[0]
        );
        assert!(model.is_stationary());
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let series = [1.0, 2.0, 3.0, 4.0];
        let ac = autocovariance(&series, 2);
        // variance of [1,2,3,4] (population) = 1.25
        assert!((ac[0] - 1.25).abs() < 1e-12);
        assert_eq!(ac.len(), 3);
    }

    #[test]
    fn forecast_decays_toward_mean() {
        let series = ar1_series(0.9, 2000);
        let model = ArModel::fit(&series, 1).unwrap();
        let fc = model.forecast(&series, 50).unwrap();
        // Long-horizon forecasts converge to the series mean.
        let last = fc.last().unwrap();
        assert!((last - model.mean()).abs() < 0.05);
    }

    #[test]
    fn fit_rejects_short_series() {
        assert!(matches!(
            ArModel::fit(&[1.0, 2.0], 3),
            Err(TsError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn fit_rejects_constant_series() {
        let series = vec![5.0; 100];
        assert!(matches!(
            ArModel::fit(&series, 2),
            Err(TsError::NumericalError(_))
        ));
    }

    #[test]
    fn fit_rejects_order_zero() {
        let series = ar1_series(0.5, 100);
        assert!(ArModel::fit(&series, 0).is_err());
    }

    #[test]
    fn forecast_validates_args() {
        let series = ar1_series(0.5, 100);
        let model = ArModel::fit(&series, 2).unwrap();
        assert!(model.forecast(&series, 0).is_err());
        assert!(model.forecast(&[1.0], 3).is_err());
    }

    #[test]
    fn differencing_recovers_linear_trend() {
        // x_t = 2t: differences are constant 2; ARI should extrapolate the
        // trend. A constant diff series breaks AR fitting, so add tiny
        // wiggle.
        let series: Vec<f64> = (0..200)
            .map(|t| 2.0 * t as f64 + 0.01 * ((t % 7) as f64))
            .collect();
        let model = ArModel::fit(&DiffForecaster::<ArModel>::difference(&series), 3).unwrap();
        let ari = DiffForecaster::new(model);
        let fc = ari.forecast(&series, 3).unwrap();
        for (i, v) in fc.iter().enumerate() {
            let expect = 2.0 * (200 + i) as f64;
            assert!((v - expect).abs() < 1.0, "step {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn best_order_selection_runs() {
        let series = ar1_series(0.6, 1000);
        let model = fit_best_order(&series, 6).unwrap();
        assert!(model.order() >= 1 && model.order() <= 6);
    }

    #[test]
    fn levinson_matches_direct_solution_order2() {
        // Known AR(2): phi = (0.5, -0.3). Build theoretical autocovariance
        // from the Yule-Walker equations and verify recovery.
        // rho_1 = phi1 / (1 - phi2); rho_2 = phi1*rho1 + phi2
        let (phi1, phi2) = (0.5f64, -0.3f64);
        let rho1 = phi1 / (1.0 - phi2);
        let rho2 = phi1 * rho1 + phi2;
        let autocov = [1.0, rho1, rho2];
        let (phi, _) = levinson_durbin(&autocov, 2).unwrap();
        assert!((phi[0] - phi1).abs() < 1e-10);
        assert!((phi[1] - phi2).abs() < 1e-10);
    }

    #[test]
    fn stationarity_check_flags_unit_root() {
        let model = ArModel {
            coefficients: vec![1.2],
            mean: 0.0,
            innovation_variance: 1.0,
        };
        assert!(!model.is_stationary());
    }
}
