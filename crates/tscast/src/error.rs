use std::fmt;

/// Errors produced by `tscast` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TsError {
    /// The series is too short for the requested model order or horizon.
    SeriesTooShort {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// An invalid parameter value was supplied.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A numeric operation produced a non-finite or singular result.
    NumericalError(String),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::SeriesTooShort { needed, got } => {
                write!(
                    f,
                    "series too short: need at least {needed} observations, got {got}"
                )
            }
            TsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            TsError::NumericalError(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TsError::SeriesTooShort { needed: 10, got: 3 };
        assert!(e.to_string().contains("need at least 10"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TsError>();
    }
}
