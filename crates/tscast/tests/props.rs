//! Property-based tests for the forecasting substrate.

use proptest::prelude::*;
use tscast::ar::{autocovariance, ArModel};
use tscast::smooth::{Ewma, HoltLinear};
use tscast::Forecaster;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn autocovariance_lag0_dominates(
        xs in prop::collection::vec(-100.0f64..100.0, 4..200),
        lag in 1usize..4,
    ) {
        let ac = autocovariance(&xs, lag);
        // |gamma(k)| <= gamma(0) (Cauchy-Schwarz).
        prop_assert!(ac[lag].abs() <= ac[0] + 1e-9);
    }

    #[test]
    fn ewma_level_stays_within_history_range(
        xs in prop::collection::vec(-100.0f64..100.0, 1..100),
        alpha in 0.01f64..1.0,
    ) {
        let e = Ewma::new(alpha).expect("valid alpha");
        let level = e.level(&xs).expect("non-empty");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(level >= lo - 1e-9 && level <= hi + 1e-9);
    }

    #[test]
    fn holt_forecast_is_affine_in_horizon(
        xs in prop::collection::vec(-100.0f64..100.0, 2..100),
        alpha in 0.05f64..1.0,
        beta in 0.05f64..1.0,
    ) {
        let h = HoltLinear::new(alpha, beta).expect("valid weights");
        let fc = h.forecast(&xs, 4).expect("forecasts");
        // Consecutive differences of a linear forecast are constant.
        let d1 = fc[1] - fc[0];
        let d2 = fc[2] - fc[1];
        let d3 = fc[3] - fc[2];
        prop_assert!((d1 - d2).abs() < 1e-9 * (1.0 + d1.abs()));
        prop_assert!((d2 - d3).abs() < 1e-9 * (1.0 + d2.abs()));
    }

    #[test]
    fn ar_fit_coefficients_finite(
        seed in 1u64..10_000,
        order in 1usize..6,
    ) {
        // Pseudo-random wiggle with guaranteed variance.
        let mut state = seed;
        let series: Vec<f64> = (0..200)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let model = ArModel::fit(&series, order).expect("fits");
        for &c in model.coefficients() {
            prop_assert!(c.is_finite());
        }
        prop_assert!(model.innovation_variance() >= 0.0);
        let fc = model.forecast(&series, 8).expect("forecasts");
        prop_assert!(fc.iter().all(|v| v.is_finite()));
    }
}
