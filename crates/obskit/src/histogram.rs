//! Fixed-bucket histograms.
//!
//! Every histogram in the workspace shares ONE bucket layout, so any two
//! histograms merge bucket-for-bucket without resampling — the property
//! that makes per-thread recorders mergeable in any partitioning. The
//! layout is exponential base 2: bucket `i` (for `i < BUCKET_COUNT - 1`)
//! holds values `v` with `v <= 2^i`, bucket 0 additionally catching
//! everything `<= 1` (including zero and negatives), and the last bucket
//! catching the overflow tail. Powers of two are exactly representable,
//! so bucket assignment has no platform-dependent rounding.

/// Number of buckets, covering `<= 1` up to `> 2^61` in the overflow tail.
pub const BUCKET_COUNT: usize = 63;

/// A fixed-layout exponential histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Bucket index for a value: the smallest `i` with `value <= 2^i`,
    /// clamped into the fixed layout.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 1.0 {
            // NaN, negatives, zero, and (0, 1] all land in bucket 0.
            return 0;
        }
        let mut i = 0usize;
        let mut bound = 1.0f64;
        while i < BUCKET_COUNT - 1 && value > bound {
            bound *= 2.0;
            i += 1;
        }
        i
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.buckets[Histogram::bucket_index(value)] += 1;
    }

    /// Adds another histogram bucket-wise (always layout-compatible).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// `(bucket index, count)` pairs for non-empty buckets, ascending —
    /// the sparse form the JSON snapshot emits.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1.0), 0);
        assert_eq!(Histogram::bucket_index(1.5), 1);
        assert_eq!(Histogram::bucket_index(2.0), 1);
        assert_eq!(Histogram::bucket_index(2.1), 2);
        assert_eq!(Histogram::bucket_index(4.0), 2);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // Overflow tail.
        assert_eq!(Histogram::bucket_index(1e300), BUCKET_COUNT - 1);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0.0, 1.0, 3.0, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107.0);
        assert_eq!(h.mean(), 21.4);
        assert_eq!(h.bucket(0), 2); // 0.0 and 1.0
        assert_eq!(h.bucket(2), 2); // the two 3.0s (2 < 3 <= 4)
        assert_eq!(h.bucket(7), 1); // 64 < 100 <= 128
    }

    #[test]
    fn merge_equals_joint_recording() {
        let values = [0.5, 2.0, 7.0, 7.0, 1000.0, 3.0];
        let mut joint = Histogram::new();
        for &v in &values {
            joint.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &values[..3] {
            a.record(v);
        }
        for &v in &values[3..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), joint.count());
        assert_eq!(a.sum(), joint.sum());
        for i in 0..BUCKET_COUNT {
            assert_eq!(a.bucket(i), joint.bucket(i), "bucket {i}");
        }
    }

    #[test]
    fn nonzero_buckets_sparse_and_sorted() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(1000.0);
        let pairs: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(pairs, vec![(0, 1), (10, 1)]);
    }
}
