//! Wall-clock access as an injected capability.
//!
//! Library crates in this workspace may not read real time (detlint
//! D002): it is the one input a seed cannot pin. Code that wants to
//! *report* durations — the `repro` binary's train-time columns — takes a
//! `&dyn Clock` instead. The deterministic default is [`NullClock`]
//! (always zero, so timings vanish from reproducible output); the only
//! real implementation lives in `crates/bench`, which detlint already
//! classifies as timing-exempt, backed by `std::time::Instant`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond source.
///
/// `Send + Sync` so a single clock can be shared by parallel experiment
/// grids; implementations must be monotonic per clock instance but carry
/// no epoch guarantee — only differences of readings are meaningful.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's arbitrary origin.
    fn now_nanos(&self) -> u64;
}

/// The deterministic clock: always zero, so every measured duration is
/// zero and reproducible output carries no timing noise.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }
}

/// A hand-advanced clock for tests that assert timing plumbing without
/// real time: each `advance` moves the reading forward deterministically.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_always_zero() {
        let c = NullClock;
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> = vec![Box::new(NullClock), Box::new(ManualClock::new())];
        for c in &clocks {
            let a = c.now_nanos();
            let b = c.now_nanos();
            assert!(b >= a);
        }
    }
}
