//! `obskit` — deterministic observability for the prediction pipeline.
//!
//! Every other instrumentation library answers "how long did this take?"
//! with a wall clock, which makes instrumented output nondeterministic and
//! therefore untestable. This workspace's contract (DESIGN.md "Parallel
//! execution & determinism", enforced by `detlint`) is the opposite: the
//! same seed must produce the same bytes, observability included. obskit
//! therefore builds on three rules:
//!
//! 1. **Logical time.** Spans measure *recorded events*, not nanoseconds:
//!    the [`Recorder`] keeps a monotonic tick counter incremented by every
//!    counter/gauge/histogram observation, and a span's "duration" is the
//!    number of ticks elapsed between enter and exit. Same work → same
//!    ticks, on any machine, at any thread count.
//! 2. **Real time is a capability, not a default.** Code that genuinely
//!    wants wall-clock durations (the `repro` binary's progress lines)
//!    takes a [`Clock`] — and the only non-null implementation lives in
//!    `crates/bench`, the one crate detlint's D002 already exempts.
//! 3. **Order-preserving merges.** Parallel sections give each worker a
//!    [`Recorder::fork`] and merge the children back **in input order**
//!    (the same order `parkit` returns results), so a parallel run's
//!    metrics are byte-identical to a serial run's.
//!
//! Keys are dotted paths (`"mlkit.gbdt.boosting_rounds"`); snapshots are
//! rendered by [`Recorder::snapshot_json`] with sorted keys and a stable
//! float format, so equality of two snapshots can be checked bytewise.
//!
//! # Example
//!
//! ```
//! use obskit::Recorder;
//!
//! let mut rec = Recorder::new();
//! let span = rec.span_start("work");
//! for batch in 0..4u64 {
//!     rec.incr("work.batches", 1);
//!     rec.observe("work.batch_size", (batch * 100) as f64);
//! }
//! rec.span_end(span);
//! assert_eq!(rec.counter("work.batches"), 4);
//! // 8 events were recorded inside the span (4 incr + 4 observe).
//! assert_eq!(rec.span("work").map(|s| s.total_ticks), Some(8));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

mod clock;
mod histogram;

pub use clock::{Clock, ManualClock, NullClock};
pub use histogram::{Histogram, BUCKET_COUNT};

/// Aggregate statistics for one named span.
///
/// Durations are *logical*: the number of events recorded on the owning
/// [`Recorder`] between `span_start` and `span_end`. Nested or repeated
/// spans with the same name aggregate into one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Sum of logical durations over all completions.
    pub total_ticks: u64,
    /// Smallest observed logical duration.
    pub min_ticks: u64,
    /// Largest observed logical duration.
    pub max_ticks: u64,
}

impl SpanStats {
    fn record(&mut self, ticks: u64) {
        if self.count == 0 {
            self.min_ticks = ticks;
            self.max_ticks = ticks;
        } else {
            self.min_ticks = self.min_ticks.min(ticks);
            self.max_ticks = self.max_ticks.max(ticks);
        }
        self.count += 1;
        self.total_ticks += ticks;
    }

    fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ticks += other.total_ticks;
        self.min_ticks = self.min_ticks.min(other.min_ticks);
        self.max_ticks = self.max_ticks.max(other.max_ticks);
    }
}

/// An open span, returned by [`Recorder::span_start`] and consumed by
/// [`Recorder::span_end`].
///
/// Not RAII on purpose: closing a span mutates the recorder, and holding
/// `&mut Recorder` inside a guard would lock the recorder for the span's
/// whole extent. A token the caller hands back keeps the borrow local.
#[derive(Debug)]
#[must_use = "a span that is never ended records nothing"]
pub struct SpanToken {
    name: &'static str,
    start_ticks: u64,
    live: bool,
}

/// The metrics sink: counters, gauges, fixed-bucket histograms, and
/// logical-clock spans, all keyed by dotted-path strings.
///
/// A disabled recorder ([`Recorder::null`]) ignores every call after one
/// branch — the hot-loop fast path — and always snapshots to the empty
/// schema. Cloning is supported for tests; production code forks instead.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    ticks: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an enabled recorder.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            ticks: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
        }
    }

    /// Creates a disabled recorder: every recording call returns after a
    /// single branch and the snapshot stays empty.
    pub fn null() -> Recorder {
        Recorder {
            enabled: false,
            ..Recorder::new()
        }
    }

    /// Whether this recorder stores anything. Callers building dynamic
    /// keys (`format!`-style) should check this first to keep the
    /// disabled path allocation-free.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The logical clock: total events recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Adds `by` to a counter (creating it at zero).
    pub fn incr(&mut self, key: &str, by: u64) {
        if !self.enabled {
            return;
        }
        self.ticks += 1;
        match self.counters.get_mut(key) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(key.to_string(), by);
            }
        }
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge(&mut self, key: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.ticks += 1;
        match self.gauges.get_mut(key) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(key.to_string(), value);
            }
        }
    }

    /// Records one observation into a fixed-bucket histogram.
    pub fn observe(&mut self, key: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.ticks += 1;
        match self.histograms.get_mut(key) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(key.to_string(), h);
            }
        }
    }

    /// Opens a span. Spans need `'static` names: they label fixed pipeline
    /// phases, never data-dependent keys.
    pub fn span_start(&mut self, name: &'static str) -> SpanToken {
        SpanToken {
            name,
            start_ticks: self.ticks,
            live: self.enabled,
        }
    }

    /// Closes a span, recording the logical duration (events since the
    /// matching [`Recorder::span_start`]).
    pub fn span_end(&mut self, token: SpanToken) {
        if !token.live || !self.enabled {
            return;
        }
        let ticks = self.ticks.saturating_sub(token.start_ticks);
        self.spans.entry(token.name).or_default().record(ticks);
    }

    /// Creates an empty child with the same enabled flag — one per worker
    /// in a parallel section. Merge children back with
    /// [`Recorder::merge`] **in input order**.
    pub fn fork(&self) -> Recorder {
        if self.enabled {
            Recorder::new()
        } else {
            Recorder::null()
        }
    }

    /// Folds a child recorder into this one: counters and span aggregates
    /// add, histograms add bucket-wise, gauges take the child's value
    /// (last write wins), and the child's ticks extend the logical clock.
    ///
    /// Determinism contract: when children come from a parallel section,
    /// merge them in the order of the inputs that produced them (the order
    /// `parkit::par_map` returns results), so the merged state matches a
    /// serial run's byte for byte.
    pub fn merge(&mut self, child: Recorder) {
        if !self.enabled {
            return;
        }
        self.ticks += child.ticks;
        for (k, v) in child.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in child.gauges {
            self.gauges.insert(k, v);
        }
        for (k, h) in child.histograms {
            match self.histograms.get_mut(&k) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.histograms.insert(k, h);
                }
            }
        }
        for (k, s) in child.spans {
            self.spans.entry(k).or_default().merge(&s);
        }
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Reads a span aggregate.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Iterates span aggregates in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> {
        self.spans.iter().map(|(&k, s)| (k, s))
    }

    /// Renders the stable JSON snapshot.
    ///
    /// The schema is part of the golden-test surface
    /// (`results/golden_metrics_tiny.json`):
    ///
    /// ```json
    /// {
    ///   "schema": "obskit/1",
    ///   "ticks": 12,
    ///   "counters": {"a.b": 3},
    ///   "gauges": {"c": 0.5},
    ///   "histograms": {"d": {"count": 2, "sum": 3.0, "buckets": [[1, 2]]}},
    ///   "spans": {"e": {"count": 1, "total_ticks": 4, "min_ticks": 4, "max_ticks": 4}}
    /// }
    /// ```
    ///
    /// Keys are sorted (BTreeMap order), floats use Rust's shortest
    /// round-trip `{}` format, and histogram buckets are emitted sparsely
    /// as `[index, count]` pairs — so two equal recorders snapshot to
    /// identical bytes on every platform.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"obskit/1\"");
        let _ = write!(out, ",\"ticks\":{}", self.ticks);

        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push('}');

        out.push_str(",\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_f64(*v));
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(k),
                h.count(),
                json_f64(h.sum())
            );
            let mut first = true;
            for (bucket, n) in h.nonzero_buckets() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push_str(",\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ticks\":{},\"min_ticks\":{},\"max_ticks\":{}}}",
                json_string(k),
                s.count,
                s.total_ticks,
                s.min_ticks,
                s.max_ticks
            );
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a key as a JSON string literal. Keys are dotted ASCII paths in
/// practice, but escaping keeps the snapshot well-formed for any input.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 for the snapshot: Rust's `{}` is the shortest string
/// that round-trips, and is platform-independent. Non-finite values
/// (which valid instrumentation never produces) degrade to null.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    // Bare integers like "3" are valid JSON numbers already; keep them.
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = Recorder::new();
        r.incr("a.b", 2);
        r.incr("a.b", 3);
        r.incr("z", 1);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("z"), 1);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.ticks(), 3);
    }

    #[test]
    fn null_recorder_stores_nothing() {
        let mut r = Recorder::null();
        r.incr("a", 1);
        r.gauge("b", 2.0);
        r.observe("c", 3.0);
        let t = r.span_start("d");
        r.span_end(t);
        assert_eq!(r.ticks(), 0);
        assert_eq!(r.counter("a"), 0);
        assert!(!r.enabled());
        assert_eq!(
            r.snapshot_json(),
            "{\"schema\":\"obskit/1\",\"ticks\":0,\"counters\":{},\
             \"gauges\":{},\"histograms\":{},\"spans\":{}}"
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = Recorder::new();
        r.gauge("g", 1.5);
        r.gauge("g", -2.25);
        assert_eq!(r.gauge_value("g"), Some(-2.25));
    }

    #[test]
    fn spans_measure_logical_time() {
        let mut r = Recorder::new();
        let outer = r.span_start("outer");
        r.incr("x", 1);
        r.incr("x", 1);
        r.span_end(outer);
        let again = r.span_start("outer");
        r.incr("x", 1);
        r.span_end(again);
        let s = r.span("outer").copied().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ticks, 3);
        assert_eq!(s.min_ticks, 1);
        assert_eq!(s.max_ticks, 2);
    }

    #[test]
    fn fork_merge_matches_serial_recording() {
        // Serial reference.
        let mut serial = Recorder::new();
        for part in 0..3u64 {
            for i in 0..4u64 {
                serial.incr("n", 1);
                serial.observe("v", (part * 4 + i) as f64);
            }
            serial.gauge("last_part", part as f64);
        }

        // Forked "workers", merged in input order.
        let mut parent = Recorder::new();
        let children: Vec<Recorder> = (0..3u64)
            .map(|part| {
                let mut c = parent.fork();
                for i in 0..4u64 {
                    c.incr("n", 1);
                    c.observe("v", (part * 4 + i) as f64);
                }
                c.gauge("last_part", part as f64);
                c
            })
            .collect();
        for c in children {
            parent.merge(c);
        }
        assert_eq!(parent.snapshot_json(), serial.snapshot_json());
    }

    #[test]
    fn merge_order_controls_gauges_only() {
        // Counters/histograms are commutative; gauges take the last merge.
        let mut a = Recorder::new();
        a.gauge("g", 1.0);
        let mut b = Recorder::new();
        b.gauge("g", 2.0);
        let mut parent = Recorder::new();
        parent.merge(a);
        parent.merge(b);
        assert_eq!(parent.gauge_value("g"), Some(2.0));
    }

    #[test]
    fn fork_of_null_is_null() {
        let parent = Recorder::null();
        let mut child = parent.fork();
        child.incr("a", 1);
        assert_eq!(child.ticks(), 0);
    }

    #[test]
    fn snapshot_is_valid_and_stable() {
        let mut r = Recorder::new();
        r.incr("b", 2);
        r.incr("a", 1);
        r.gauge("rate", 0.5);
        r.observe("sizes", 3.0);
        r.observe("sizes", 300.0);
        let t = r.span_start("phase");
        r.incr("a", 1);
        r.span_end(t);
        let s1 = r.snapshot_json();
        let s2 = r.snapshot_json();
        assert_eq!(s1, s2);
        // Sorted keys: "a" before "b".
        assert!(s1.find("\"a\"").unwrap() < s1.find("\"b\"").unwrap());
        assert!(s1.starts_with("{\"schema\":\"obskit/1\""));
        assert!(s1.contains("\"rate\":0.5"));
        assert!(s1.contains("\"phase\""));
        // Balanced braces (cheap well-formedness check without a parser).
        let open = s1.matches(['{', '[']).count();
        let close = s1.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_handles_edge_values() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn span_on_disabled_recorder_is_inert() {
        let mut r = Recorder::null();
        let t = r.span_start("p");
        r.span_end(t);
        assert!(r.span("p").is_none());
    }
}
