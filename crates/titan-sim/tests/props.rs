//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use titan_sim::config::SimConfig;
use titan_sim::rng::{derive_seed_indexed, OuProcess, XorShift64};
use titan_sim::telemetry::window_stats;
use titan_sim::topology::{NodeId, SlotId, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_node_maps_into_exactly_one_slot_and_cabinet(
        gx in 1u16..8, gy in 1u16..8, cages in 1u16..4, slots in 1u16..5, nodes in 1u16..5,
    ) {
        let topo = Topology::new(gx, gy, cages, slots, nodes).expect("valid");
        let mut slot_counts = vec![0u32; topo.n_slots() as usize];
        for node in topo.nodes() {
            let slot = topo.slot_of(node).expect("in range");
            slot_counts[slot.0 as usize] += 1;
            let cab = topo.cabinet_index(node).expect("in range");
            prop_assert!(cab < topo.n_cabinets());
        }
        for c in slot_counts {
            prop_assert_eq!(c, nodes as u32);
        }
    }

    #[test]
    fn slot_members_partition_the_machine(
        gx in 1u16..6, gy in 1u16..4, slots in 1u16..4, nodes in 1u16..5,
    ) {
        let topo = Topology::new(gx, gy, 1, slots, nodes).expect("valid");
        let mut seen = vec![false; topo.n_nodes() as usize];
        for slot in topo.slots() {
            for m in topo.slot_members(slot).expect("valid slot") {
                prop_assert!(!seen[m.0 as usize], "node in two slots");
                seen[m.0 as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derived_seeds_rarely_collide(a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        prop_assert_ne!(
            derive_seed_indexed(42, "stream", a),
            derive_seed_indexed(42, "stream", b)
        );
    }

    #[test]
    fn xorshift_streams_with_same_seed_agree(seed in 1u64..u64::MAX) {
        let mut a = XorShift64::new(seed);
        let mut b = XorShift64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ou_process_stays_finite(
        theta in 0.01f64..1.0,
        mu in -100.0f64..100.0,
        sigma in 0.0f64..10.0,
        seed in 1u64..1000,
    ) {
        let mut rng = XorShift64::new(seed);
        let mut ou = OuProcess::new(theta, mu, sigma);
        for _ in 0..500 {
            let v = ou.step(&mut rng);
            prop_assert!(v.is_finite());
            // Stationary sd is sigma / sqrt(theta(2-theta)); 12 sds is a
            // generous bound.
            let bound = mu.abs() + 1.0 + 12.0 * sigma / (theta * (2.0 - theta)).sqrt();
            prop_assert!(v.abs() <= bound, "value {v} beyond {bound}");
        }
    }

    #[test]
    fn window_stats_shift_invariance(
        xs in prop::collection::vec(0.0f32..50.0, 2..100),
        shift in -100.0f32..100.0,
    ) {
        let base = window_stats(&xs);
        let shifted: Vec<f32> = xs.iter().map(|&v| v + shift).collect();
        let s = window_stats(&shifted);
        // Mean shifts, spread and differences are invariant.
        prop_assert!((s.mean - (base.mean + shift)).abs() < 1e-2);
        prop_assert!((s.std - base.std).abs() < 1e-2);
        prop_assert!((s.diff_mean - base.diff_mean).abs() < 1e-2);
        prop_assert!((s.diff_std - base.diff_std).abs() < 1e-2);
    }
}

// Non-proptest cross-checks that are too slow to randomise widely.
#[test]
fn tiny_trace_invariants_hold_across_seeds() {
    for seed in [1u64, 17, 123] {
        let trace = titan_sim::engine::generate(&SimConfig::tiny(seed)).expect("generates");
        let horizon = trace.config().total_minutes();
        for run in trace.apruns() {
            assert!(run.end_min <= horizon);
            assert!(!run.nodes.is_empty());
        }
        // Every sample's aprun/node pair is consistent with the schedule.
        for s in trace.samples() {
            let run = trace.aprun(s.aprun).expect("valid id");
            assert!(run.nodes.contains(&s.node));
            assert!(s.avg_gpu_temp_c > 0.0);
            assert!(s.avg_gpu_power_w > 0.0);
        }
    }
}

#[test]
fn slot_range_queries_compose() {
    use titan_sim::apps::AppCatalog;
    use titan_sim::schedule::Schedule;
    use titan_sim::telemetry::{SeriesKind, TelemetrySimulator};

    let cfg = SimConfig::tiny(5);
    let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).expect("catalog");
    let schedule = Schedule::generate(&cfg, &catalog).expect("schedule");
    let sim = TelemetrySimulator::new(&cfg, &schedule, &catalog).expect("simulator");
    let full = sim
        .simulate_slot_range(SlotId(0), 0, 600)
        .expect("simulates");
    let node = NodeId(0);
    // Two half-range queries agree with the full range.
    let a = sim
        .simulate_slot_range(SlotId(0), 0, 300)
        .expect("simulates");
    let b = sim
        .simulate_slot_range(SlotId(0), 300, 600)
        .expect("simulates");
    let f = full
        .series(node, SeriesKind::GpuPower, 0, 600)
        .expect("in range");
    let fa = a
        .series(node, SeriesKind::GpuPower, 0, 300)
        .expect("in range");
    let fb = b
        .series(node, SeriesKind::GpuPower, 300, 600)
        .expect("in range");
    assert_eq!(&f[..300], fa);
    assert_eq!(&f[300..], fb);
}
