//! The machine's physical organisation.
//!
//! Titan's basic block is a *node* (one AMD Opteron CPU + one NVIDIA K20X
//! GPU). Four nodes form a *slot* (sharing two Gemini routers), eight
//! slots form a *cage*, three cages form a *cabinet*, and 200 cabinets are
//! arranged in a 25 × 8 floor grid. This module provides the coordinate
//! algebra between flat [`NodeId`]s and the physical hierarchy.

use crate::{Result, SimError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Flat zero-based node identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> NodeId {
        NodeId(v)
    }
}

/// Flat zero-based slot identifier (a slot is a group of
/// [`Topology::nodes_per_slot`] consecutive nodes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SlotId(pub u32);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The full physical location of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeLocation {
    /// Cabinet column in the floor grid (0-based, paper's X axis, 0..25).
    pub cabinet_x: u16,
    /// Cabinet row in the floor grid (0-based, paper's Y axis, 0..8).
    pub cabinet_y: u16,
    /// Cage within the cabinet.
    pub cage: u16,
    /// Slot within the cage.
    pub slot: u16,
    /// Node within the slot.
    pub node: u16,
}

/// Machine geometry: grid of cabinets, cages per cabinet, slots per cage,
/// nodes per slot.
///
/// # Example
///
/// ```
/// use titan_sim::topology::{NodeId, Topology};
///
/// let topo = Topology::titan()?;
/// assert_eq!(topo.n_cabinets(), 200);
/// assert_eq!(topo.n_nodes(), 19_200);
/// let loc = topo.location(NodeId(0))?;
/// assert_eq!((loc.cabinet_x, loc.cabinet_y), (0, 0));
/// # Ok::<(), titan_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    grid_x: u16,
    grid_y: u16,
    cages_per_cabinet: u16,
    slots_per_cage: u16,
    nodes_per_slot: u16,
}

impl Topology {
    /// Creates a topology, validating that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any dimension is zero.
    pub fn new(
        grid_x: u16,
        grid_y: u16,
        cages_per_cabinet: u16,
        slots_per_cage: u16,
        nodes_per_slot: u16,
    ) -> Result<Topology> {
        for (field, v) in [
            ("grid_x", grid_x),
            ("grid_y", grid_y),
            ("cages_per_cabinet", cages_per_cabinet),
            ("slots_per_cage", slots_per_cage),
            ("nodes_per_slot", nodes_per_slot),
        ] {
            if v == 0 {
                return Err(SimError::InvalidConfig {
                    field,
                    reason: "must be non-zero".into(),
                });
            }
        }
        Ok(Topology {
            grid_x,
            grid_y,
            cages_per_cabinet,
            slots_per_cage,
            nodes_per_slot,
        })
    }

    /// The full Titan geometry: 25 × 8 cabinets, 3 cages, 8 slots, 4 nodes
    /// (19,200 node positions; the real machine populated 18,688 of them).
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for constructor uniformity.
    pub fn titan() -> Result<Topology> {
        Topology::new(25, 8, 3, 8, 4)
    }

    /// A reduced geometry keeping the paper's 25 × 8 cabinet grid but with
    /// one cage of two slots per cabinet (1,600 nodes) — the default for
    /// experiment regeneration at workstation scale.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for constructor uniformity.
    pub fn scaled() -> Result<Topology> {
        Topology::new(25, 8, 1, 2, 4)
    }

    /// A tiny geometry (4 × 2 cabinets, 64 nodes) for unit tests.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for constructor uniformity.
    pub fn tiny() -> Result<Topology> {
        Topology::new(4, 2, 1, 2, 4)
    }

    /// Cabinet-grid width (X).
    pub fn grid_x(&self) -> u16 {
        self.grid_x
    }

    /// Cabinet-grid height (Y).
    pub fn grid_y(&self) -> u16 {
        self.grid_y
    }

    /// Cages per cabinet.
    pub fn cages_per_cabinet(&self) -> u16 {
        self.cages_per_cabinet
    }

    /// Slots per cage.
    pub fn slots_per_cage(&self) -> u16 {
        self.slots_per_cage
    }

    /// Nodes per slot.
    pub fn nodes_per_slot(&self) -> u16 {
        self.nodes_per_slot
    }

    /// Total number of cabinets.
    pub fn n_cabinets(&self) -> u32 {
        self.grid_x as u32 * self.grid_y as u32
    }

    /// Nodes per cabinet.
    pub fn nodes_per_cabinet(&self) -> u32 {
        self.cages_per_cabinet as u32 * self.slots_per_cage as u32 * self.nodes_per_slot as u32
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> u32 {
        self.n_cabinets() * self.nodes_per_cabinet()
    }

    /// Total number of slots.
    pub fn n_slots(&self) -> u32 {
        self.n_nodes() / self.nodes_per_slot as u32
    }

    /// Decomposes a node id into its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] when the id is out of range.
    pub fn location(&self, node: NodeId) -> Result<NodeLocation> {
        if node.0 >= self.n_nodes() {
            return Err(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            });
        }
        let per_cab = self.nodes_per_cabinet();
        let cab = node.0 / per_cab;
        let within = node.0 % per_cab;
        let per_cage = self.slots_per_cage as u32 * self.nodes_per_slot as u32;
        let cage = within / per_cage;
        let within_cage = within % per_cage;
        let slot = within_cage / self.nodes_per_slot as u32;
        let n = within_cage % self.nodes_per_slot as u32;
        Ok(NodeLocation {
            cabinet_x: (cab % self.grid_x as u32) as u16,
            cabinet_y: (cab / self.grid_x as u32) as u16,
            cage: cage as u16,
            slot: slot as u16,
            node: n as u16,
        })
    }

    /// Recomposes a node id from a physical location.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any coordinate is out of
    /// range.
    pub fn node_id(&self, loc: NodeLocation) -> Result<NodeId> {
        if loc.cabinet_x >= self.grid_x
            || loc.cabinet_y >= self.grid_y
            || loc.cage >= self.cages_per_cabinet
            || loc.slot >= self.slots_per_cage
            || loc.node >= self.nodes_per_slot
        {
            return Err(SimError::InvalidConfig {
                field: "location",
                reason: format!("{loc:?} out of range for {self:?}"),
            });
        }
        let cab = loc.cabinet_y as u32 * self.grid_x as u32 + loc.cabinet_x as u32;
        let per_cage = self.slots_per_cage as u32 * self.nodes_per_slot as u32;
        let within = loc.cage as u32 * per_cage
            + loc.slot as u32 * self.nodes_per_slot as u32
            + loc.node as u32;
        Ok(NodeId(cab * self.nodes_per_cabinet() + within))
    }

    /// The slot containing a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] when the id is out of range.
    pub fn slot_of(&self, node: NodeId) -> Result<SlotId> {
        if node.0 >= self.n_nodes() {
            return Err(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            });
        }
        Ok(SlotId(node.0 / self.nodes_per_slot as u32))
    }

    /// The nodes that make up a slot, in id order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] when the slot id is out of
    /// range.
    pub fn slot_members(&self, slot: SlotId) -> Result<Vec<NodeId>> {
        if slot.0 >= self.n_slots() {
            return Err(SimError::UnknownEntity {
                kind: "slot",
                id: slot.0 as u64,
            });
        }
        let base = slot.0 * self.nodes_per_slot as u32;
        Ok((0..self.nodes_per_slot as u32)
            .map(|i| NodeId(base + i))
            .collect())
    }

    /// Flat cabinet index (`y * grid_x + x`) of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] when the id is out of range.
    pub fn cabinet_index(&self, node: NodeId) -> Result<u32> {
        if node.0 >= self.n_nodes() {
            return Err(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            });
        }
        Ok(node.0 / self.nodes_per_cabinet())
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes()).map(NodeId)
    }

    /// Iterates over all slot ids.
    pub fn slots(&self) -> impl Iterator<Item = SlotId> {
        (0..self.n_slots()).map(SlotId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_dimensions() {
        let t = Topology::titan().unwrap();
        assert_eq!(t.n_cabinets(), 200);
        assert_eq!(t.nodes_per_cabinet(), 96);
        assert_eq!(t.n_nodes(), 19_200);
        assert_eq!(t.n_slots(), 4_800);
    }

    #[test]
    fn location_round_trip_all_nodes_tiny() {
        let t = Topology::tiny().unwrap();
        for node in t.nodes() {
            let loc = t.location(node).unwrap();
            assert_eq!(t.node_id(loc).unwrap(), node);
        }
    }

    #[test]
    fn location_round_trip_spot_checks_titan() {
        let t = Topology::titan().unwrap();
        for raw in [0u32, 1, 95, 96, 4_799, 10_000, 19_199] {
            let node = NodeId(raw);
            let loc = t.location(node).unwrap();
            assert_eq!(t.node_id(loc).unwrap(), node);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let t = Topology::tiny().unwrap();
        assert!(t.location(NodeId(t.n_nodes())).is_err());
        assert!(t.slot_of(NodeId(t.n_nodes())).is_err());
        assert!(t.cabinet_index(NodeId(t.n_nodes())).is_err());
        assert!(t.slot_members(SlotId(t.n_slots())).is_err());
        let bad = NodeLocation {
            cabinet_x: 99,
            cabinet_y: 0,
            cage: 0,
            slot: 0,
            node: 0,
        };
        assert!(t.node_id(bad).is_err());
    }

    #[test]
    fn slot_members_are_consecutive_and_contain_node() {
        let t = Topology::titan().unwrap();
        let node = NodeId(42);
        let slot = t.slot_of(node).unwrap();
        let members = t.slot_members(slot).unwrap();
        assert_eq!(members.len(), 4);
        assert!(members.contains(&node));
        for w in members.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn cabinet_index_matches_location() {
        let t = Topology::titan().unwrap();
        for raw in [0u32, 96, 500, 19_199] {
            let node = NodeId(raw);
            let loc = t.location(node).unwrap();
            let idx = t.cabinet_index(node).unwrap();
            assert_eq!(
                idx,
                loc.cabinet_y as u32 * t.grid_x() as u32 + loc.cabinet_x as u32
            );
        }
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Topology::new(0, 8, 3, 8, 4).is_err());
        assert!(Topology::new(25, 8, 3, 8, 0).is_err());
    }

    #[test]
    fn first_cabinet_row_major() {
        let t = Topology::titan().unwrap();
        // Node 96 starts cabinet (1, 0): x advances first.
        let loc = t.location(NodeId(96)).unwrap();
        assert_eq!((loc.cabinet_x, loc.cabinet_y), (1, 0));
        // Node 96*25 starts row y=1.
        let loc = t.location(NodeId(96 * 25)).unwrap();
        assert_eq!((loc.cabinet_x, loc.cabinet_y), (0, 1));
    }
}
