//! Trace generation and on-demand telemetry queries.
//!
//! [`generate`] runs the full pipeline — catalogue → schedule → fault
//! model → per-slot telemetry — and emits a [`TraceSet`]. Slots are
//! independent, so the telemetry sweep is parallelised across threads.
//!
//! [`TelemetryQueryEngine`] re-simulates telemetry *deterministically* for
//! arbitrary (aprun, node) pairs after the fact, producing the window
//! statistics the prediction features need (run window, the four
//! look-back windows, CPU temperature, and slot-neighbour aggregates)
//! without the trace ever storing minute-level series.

use crate::apps::AppCatalog;
use crate::config::SimConfig;
use crate::faults::FaultModel;
use crate::rng::stream_rng_indexed;
use crate::schedule::{ApRunId, NodeInterval, Schedule};
use crate::telemetry::{SeriesKind, TelemetrySimulator, WindowStats};
use crate::topology::{NodeId, SlotId};
use crate::trace::{SampleRecord, TraceSet};
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The look-back horizons (minutes before run start) used for historical
/// temperature/power features — the paper's 5/15/30/60-minute windows.
pub const LOOKBACK_WINDOWS_MIN: [u64; 4] = [5, 15, 30, 60];

/// DBE intensity relative to the SBE intensity of the same run — double
/// flips are orders of magnitude rarer (paper §II: DBEs are too rare to
/// predict).
pub const DBE_RELATIVE_RATE: f64 = 0.01;

/// Generates a complete trace from a configuration.
///
/// # Errors
///
/// Propagates configuration validation and internal consistency errors.
///
/// # Example
///
/// ```
/// use titan_sim::config::SimConfig;
///
/// let trace = titan_sim::engine::generate(&SimConfig::tiny(1))?;
/// assert!(trace.positive_rate() > 0.0);
/// # Ok::<(), titan_sim::SimError>(())
/// ```
pub fn generate(cfg: &SimConfig) -> Result<TraceSet> {
    Ok(generate_full(cfg)?.0)
}

/// Like [`generate`], but records generation metrics: samples and
/// SBE/DBE totals per cabinet, per-slot event histograms, and a
/// `"titan_sim.generate"` span. Per-slot recorders are forked from `rec`
/// and merged back in slot order, so the recorded metrics are
/// byte-identical under any thread policy — and passing
/// [`obskit::Recorder::null`] is exactly [`generate`].
///
/// # Errors
///
/// Propagates configuration validation and internal consistency errors.
pub fn generate_observed(cfg: &SimConfig, rec: &mut obskit::Recorder) -> Result<TraceSet> {
    Ok(generate_full_observed(cfg, rec)?.0)
}

/// Like [`generate`], but also returns the hidden [`FaultModel`] — ground
/// truth that a real operator never observes, useful for calibration
/// tests and oracle comparisons.
///
/// # Errors
///
/// Propagates configuration validation and internal consistency errors.
pub fn generate_full(cfg: &SimConfig) -> Result<(TraceSet, FaultModel)> {
    generate_full_observed(cfg, &mut obskit::Recorder::null())
}

/// [`generate_full`] with generation metrics (see [`generate_observed`]).
///
/// # Errors
///
/// Propagates configuration validation and internal consistency errors.
pub fn generate_full_observed(
    cfg: &SimConfig,
    rec: &mut obskit::Recorder,
) -> Result<(TraceSet, FaultModel)> {
    let span = rec.span_start("titan_sim.generate");
    cfg.validate()?;
    let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days)?;
    let schedule = Schedule::generate(cfg, &catalog)?;
    let faults = FaultModel::generate(cfg)?;
    let sim = TelemetrySimulator::new(cfg, &schedule, &catalog)?;
    let n_nodes = cfg.topology.n_nodes() as usize;
    let timelines = schedule.node_timelines(n_nodes);

    let n_slots = cfg.topology.n_slots();

    struct Shard {
        samples: Vec<SampleRecord>,
        cum_temp: Vec<(NodeId, f64)>,
        cum_power: Vec<(NodeId, f64)>,
        rec: obskit::Recorder,
    }

    let process_slot = |slot: SlotId, shard: &mut Shard| -> Result<()> {
        let series = sim.simulate_slot(slot)?;
        let horizon = cfg.total_minutes();
        // Per-slot RNG draws: two streams (SBE + DBE) sample once per
        // busy interval on each member node.
        let mut slot_rng_draws = 0u64;
        for &node in series.nodes() {
            // Cumulative sums for the Fig. 5 heatmaps.
            let temps = series.series(node, SeriesKind::GpuTemp, 0, horizon)?;
            let powers = series.series(node, SeriesKind::GpuPower, 0, horizon)?;
            shard
                .cum_temp
                .push((node, temps.iter().map(|&v| v as f64).sum()));
            shard
                .cum_power
                .push((node, powers.iter().map(|&v| v as f64).sum()));

            // SBE sampling per busy interval on this node. DBEs draw
            // from an independent stream so that enabling/disabling them
            // never perturbs the SBE sequence.
            let mut rng = stream_rng_indexed(cfg.seed, "sbe", node.0 as u64);
            let mut dbe_rng = stream_rng_indexed(cfg.seed, "dbe", node.0 as u64);
            let cabinet = cfg.topology.cabinet_index(node)?;
            let mut node_sbes = 0u64;
            let mut node_dbes = 0u64;
            for iv in &timelines[node.0 as usize] {
                let avg_t = series.mean(node, SeriesKind::GpuTemp, iv.start_min, iv.end_min)?;
                let avg_p = series.mean(node, SeriesKind::GpuPower, iv.start_min, iv.end_min)?;
                let run = &schedule.apruns()[iv.aprun.0 as usize];
                let app = catalog.profile(run.app_id)?;
                let lambda =
                    faults.intensity(node, app, run.runtime_min(), run.start_min, avg_t)?;
                // Burst magnitude scales with the run's *aggregate*
                // compute and memory exposure (node-hours × utilisation):
                // bigger, longer, memory-heavier runs re-strike faulty
                // cells more often. This is the knob behind the paper's
                // strong Fig. 4 Spearman correlations between SBE count
                // and core-hours / memory.
                let exposure_hours = run.node_hours() * app.core_util * app.mem_util;
                let count = faults.sample_count_with_burst(lambda, exposure_hours, &mut rng);
                // DBEs: orders of magnitude rarer, no burst (a double
                // flip is a one-off event, not a stuck cell).
                let dbe = faults.sample_count(lambda * DBE_RELATIVE_RATE, &mut dbe_rng);
                node_sbes += u64::from(count);
                node_dbes += u64::from(dbe);
                slot_rng_draws += 2;
                shard.samples.push(SampleRecord {
                    aprun: iv.aprun,
                    node,
                    avg_gpu_temp_c: avg_t as f32,
                    avg_gpu_power_w: avg_p as f32,
                    sbe_true: count,
                    sbe_attributed: 0, // filled in by TraceSet::assemble
                    dbe_true: dbe,
                });
            }
            if shard.rec.enabled() {
                shard
                    .rec
                    .incr("titan_sim.samples", timelines[node.0 as usize].len() as u64);
                shard
                    .rec
                    .incr(&format!("titan_sim.sbes.cabinet.{cabinet}"), node_sbes);
                shard
                    .rec
                    .incr(&format!("titan_sim.dbes.cabinet.{cabinet}"), node_dbes);
            }
        }
        shard
            .rec
            .observe("titan_sim.rng_draws_per_slot", slot_rng_draws as f64);
        Ok(())
    };

    // Slots are independent; fan them out with the order-preserving
    // parallel map. Each slot's RNG substreams are keyed by node id, so
    // any thread count produces bit-identical shards; merging in slot
    // order keeps the overall sample sequence deterministic too.
    let slots: Vec<u32> = (0..n_slots).collect();
    let parent_rec = &*rec;
    let shards: Vec<Shard> = parkit::try_par_map(cfg.threads, &slots, |&slot| {
        let mut shard = Shard {
            samples: Vec::new(),
            cum_temp: Vec::new(),
            cum_power: Vec::new(),
            rec: parent_rec.fork(),
        };
        process_slot(SlotId(slot), &mut shard)?;
        Ok::<Shard, SimError>(shard)
    })?;

    let mut samples = Vec::new();
    let mut cum_temp = vec![0.0f64; n_nodes];
    let mut cum_power = vec![0.0f64; n_nodes];
    for shard in shards {
        samples.extend(shard.samples);
        for (node, v) in shard.cum_temp {
            cum_temp[node.0 as usize] = v;
        }
        for (node, v) in shard.cum_power {
            cum_power[node.0 as usize] = v;
        }
        // Slot-order merge: metrics match a serial run byte for byte.
        rec.merge(shard.rec);
    }

    let trace = TraceSet::assemble(cfg.clone(), catalog, schedule, samples, cum_temp, cum_power)?;
    rec.gauge("titan_sim.positive_rate", trace.positive_rate());
    rec.span_end(span);
    Ok((trace, faults))
}

/// Full telemetry feature bundle for one (aprun, node) sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleTelemetry {
    /// The aprun.
    pub aprun: ApRunId,
    /// The node.
    pub node: NodeId,
    /// GPU temperature during the run.
    pub run_temp: WindowStats,
    /// GPU power during the run.
    pub run_power: WindowStats,
    /// CPU temperature (same node) during the run.
    pub cpu_temp: WindowStats,
    /// Slot-neighbour average GPU temperature during the run.
    pub nei_temp: WindowStats,
    /// Slot-neighbour average GPU power during the run.
    pub nei_power: WindowStats,
    /// GPU temperature over the 5/15/30/60-minute windows before the run.
    pub prev_temp: [WindowStats; 4],
    /// GPU power over the same look-back windows.
    pub prev_power: [WindowStats; 4],
}

/// Recomputes telemetry statistics on demand, slot by slot.
#[derive(Debug)]
pub struct TelemetryQueryEngine<'a> {
    trace: &'a TraceSet,
    sim: TelemetrySimulator<'a>,
}

impl<'a> TelemetryQueryEngine<'a> {
    /// Creates a query engine over a trace.
    ///
    /// # Errors
    ///
    /// Propagates catalogue lookup errors.
    pub fn new(trace: &'a TraceSet) -> Result<TelemetryQueryEngine<'a>> {
        let sim = TelemetrySimulator::new(trace.config(), trace.schedule(), trace.catalog())?;
        Ok(TelemetryQueryEngine { trace, sim })
    }

    /// Computes [`SampleTelemetry`] for every requested (aprun, node)
    /// pair. The result preserves the input order. Queries are grouped by
    /// slot internally so each slot is simulated exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for dangling ids or pairs where
    /// the node is not part of the aprun's allocation.
    pub fn query(&self, pairs: &[(ApRunId, NodeId)]) -> Result<Vec<SampleTelemetry>> {
        let topo = &self.trace.config().topology;
        // Group query indices by slot.
        let mut by_slot: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &(aprun, node)) in pairs.iter().enumerate() {
            let run = self.trace.aprun(aprun)?;
            if !run.nodes.contains(&node) {
                return Err(SimError::UnknownEntity {
                    kind: "sample (node not in aprun allocation)",
                    id: node.0 as u64,
                });
            }
            by_slot.entry(topo.slot_of(node)?.0).or_default().push(i);
        }

        let mut slots: Vec<u32> = by_slot.keys().copied().collect();
        slots.sort_unstable();

        // Each slot is simulated once by whichever worker claims it;
        // workers return (query index, result) pairs that merge into the
        // input-ordered output, so the thread policy cannot affect results.
        let mut out = vec![SampleTelemetry::default(); pairs.len()];
        let per_slot: Vec<Vec<(usize, SampleTelemetry)>> =
            parkit::try_par_map(self.trace.config().threads, &slots, |&slot_id| {
                let slot = SlotId(slot_id);
                let series = self.sim.simulate_slot(slot)?;
                let mut acc = Vec::with_capacity(by_slot[&slot_id].len());
                for &qi in &by_slot[&slot_id] {
                    let (aprun, node) = pairs[qi];
                    let run = self.trace.aprun(aprun)?;
                    let (s, e) = (run.start_min, run.end_min);
                    let mut st = SampleTelemetry {
                        aprun,
                        node,
                        run_temp: series.stats(node, SeriesKind::GpuTemp, s, e)?,
                        run_power: series.stats(node, SeriesKind::GpuPower, s, e)?,
                        cpu_temp: series.stats(node, SeriesKind::CpuTemp, s, e)?,
                        nei_temp: series.neighbor_stats(node, SeriesKind::GpuTemp, s, e)?,
                        nei_power: series.neighbor_stats(node, SeriesKind::GpuPower, s, e)?,
                        prev_temp: [WindowStats::default(); 4],
                        prev_power: [WindowStats::default(); 4],
                    };
                    for (w, &win) in LOOKBACK_WINDOWS_MIN.iter().enumerate() {
                        let lo = s.saturating_sub(win);
                        if lo < s {
                            st.prev_temp[w] = series.stats(node, SeriesKind::GpuTemp, lo, s)?;
                            st.prev_power[w] = series.stats(node, SeriesKind::GpuPower, lo, s)?;
                        }
                    }
                    acc.push((qi, st));
                }
                Ok::<_, SimError>(acc)
            })?;
        for acc in per_slot {
            for (qi, st) in acc {
                out[qi] = st;
            }
        }
        Ok(out)
    }

    /// Returns, for every (aprun, node) pair, the raw GPU temperature and
    /// power series over the `lookback_min` minutes *before* the run
    /// starts (clipped at the trace origin). Queries are grouped by slot
    /// like [`TelemetryQueryEngine::query`]. This feeds time-series
    /// forecasters that predict run-time telemetry features before the
    /// run executes (the paper's §VI-A "second approach" / §VIII).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for dangling ids or pairs where
    /// the node is not part of the aprun's allocation.
    pub fn query_preseries(
        &self,
        pairs: &[(ApRunId, NodeId)],
        lookback_min: u64,
    ) -> Result<Vec<(Vec<f32>, Vec<f32>)>> {
        let topo = &self.trace.config().topology;
        let mut by_slot: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &(aprun, node)) in pairs.iter().enumerate() {
            let run = self.trace.aprun(aprun)?;
            if !run.nodes.contains(&node) {
                return Err(SimError::UnknownEntity {
                    kind: "sample (node not in aprun allocation)",
                    id: node.0 as u64,
                });
            }
            by_slot.entry(topo.slot_of(node)?.0).or_default().push(i);
        }
        let mut out = vec![(Vec::new(), Vec::new()); pairs.len()];
        let mut slots: Vec<u32> = by_slot.keys().copied().collect();
        slots.sort_unstable();
        for slot in slots {
            let series = self.sim.simulate_slot(SlotId(slot))?;
            for &qi in &by_slot[&slot] {
                let (aprun, node) = pairs[qi];
                let run = self.trace.aprun(aprun)?;
                let start = run.start_min;
                let lo = start.saturating_sub(lookback_min);
                if lo < start {
                    out[qi] = (
                        series
                            .series(node, SeriesKind::GpuTemp, lo, start)?
                            .to_vec(),
                        series
                            .series(node, SeriesKind::GpuPower, lo, start)?
                            .to_vec(),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Re-simulates one node's raw series over a minute range — the probe
    /// behind profile plots like the paper's Fig. 8.
    ///
    /// # Errors
    ///
    /// Propagates range/entity errors from the simulator.
    pub fn node_series(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<Vec<f32>> {
        let slot = self.trace.config().topology.slot_of(node)?;
        let series = self.sim.simulate_slot_range(slot, start_min, end_min)?;
        Ok(series.series(node, kind, start_min, end_min)?.to_vec())
    }

    /// Average series over *all* members of a node's slot (used as the
    /// "slot average" context line in Fig. 8).
    ///
    /// # Errors
    ///
    /// Propagates range/entity errors from the simulator.
    pub fn slot_average_series(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<Vec<f32>> {
        let topo = &self.trace.config().topology;
        let slot = topo.slot_of(node)?;
        let series = self.sim.simulate_slot_range(slot, start_min, end_min)?;
        let members = series.nodes().to_vec();
        let len = (end_min - start_min) as usize;
        let mut acc = vec![0.0f32; len];
        for &m in &members {
            for (a, &v) in acc
                .iter_mut()
                .zip(series.series(m, kind, start_min, end_min)?)
            {
                *a += v;
            }
        }
        let inv = 1.0 / members.len() as f32;
        for a in acc.iter_mut() {
            *a *= inv;
        }
        Ok(acc)
    }

    /// Access to the underlying ambient model (for characterization).
    pub fn ambient_c(&self, cabinet_x: u16, cabinet_y: u16, minute: u64) -> f64 {
        self.sim.ambient_c(cabinet_x, cabinet_y, minute)
    }

    /// Busy intervals of a node (sorted), resolved from the schedule.
    pub fn node_timeline(&self, node: NodeId) -> Vec<NodeInterval> {
        let timelines = self
            .trace
            .schedule()
            .node_timelines(self.trace.config().topology.n_nodes() as usize);
        timelines[node.0 as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(41)).unwrap()
    }

    #[test]
    fn generation_deterministic() {
        let a = generate(&SimConfig::tiny(2)).unwrap();
        let b = generate(&SimConfig::tiny(2)).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.node_cum_temp(), b.node_cum_temp());
    }

    #[test]
    fn observed_generation_matches_plain_and_counts_reconcile() {
        let cfg = SimConfig::tiny(2);
        let plain = generate(&cfg).unwrap();
        let mut rec = obskit::Recorder::new();
        let observed = generate_observed(&cfg, &mut rec).unwrap();
        assert_eq!(plain.samples(), observed.samples());

        assert_eq!(
            rec.counter("titan_sim.samples"),
            observed.samples().len() as u64
        );
        let sbes: u64 = rec
            .counters()
            .filter(|(k, _)| k.starts_with("titan_sim.sbes.cabinet."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(sbes, observed.total_sbes());
        let span = rec.span("titan_sim.generate").unwrap();
        assert_eq!(span.count, 1);
        assert!(span.total_ticks > 0);
        // One histogram observation per slot.
        let h = rec.histogram("titan_sim.rng_draws_per_slot").unwrap();
        assert_eq!(h.count(), u64::from(cfg.topology.n_slots()));
    }

    #[test]
    fn observed_metrics_thread_count_invariant() {
        let reference = {
            let mut rec = obskit::Recorder::new();
            let cfg = SimConfig::tiny(5).with_threads(parkit::Threads::Serial);
            generate_observed(&cfg, &mut rec).unwrap();
            rec.snapshot_json()
        };
        for n in [2usize, 8] {
            let mut rec = obskit::Recorder::new();
            let cfg = SimConfig::tiny(5).with_threads(parkit::Threads::Fixed(n));
            generate_observed(&cfg, &mut rec).unwrap();
            assert_eq!(rec.snapshot_json(), reference, "metrics diverged at {n}");
        }
    }

    #[test]
    fn positive_rate_in_expected_band() {
        let t = trace();
        let rate = t.positive_rate();
        // Tiny config is looser than the scaled calibration target; just
        // require a usable minority class.
        assert!(rate > 0.001 && rate < 0.25, "positive rate {rate}");
    }

    #[test]
    fn query_engine_matches_generation_averages() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        // Take a handful of samples and verify the re-simulated run mean
        // equals the stored avg temperature (same procedural series).
        let pairs: Vec<(ApRunId, NodeId)> = t
            .samples()
            .iter()
            .take(20)
            .map(|s| (s.aprun, s.node))
            .collect();
        let stats = engine.query(&pairs).unwrap();
        for (st, s) in stats.iter().zip(t.samples().iter().take(20)) {
            assert!(
                (st.run_temp.mean - s.avg_gpu_temp_c).abs() < 0.01,
                "{} vs {}",
                st.run_temp.mean,
                s.avg_gpu_temp_c
            );
            assert!((st.run_power.mean - s.avg_gpu_power_w).abs() < 0.05);
        }
    }

    #[test]
    fn query_preserves_order_and_validates() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        let s0 = &t.samples()[0];
        let s1 = &t.samples()[t.samples().len() / 2];
        let stats = engine
            .query(&[(s1.aprun, s1.node), (s0.aprun, s0.node)])
            .unwrap();
        assert_eq!(stats[0].aprun, s1.aprun);
        assert_eq!(stats[1].aprun, s0.aprun);
        // Node not in allocation is rejected.
        let run = t.aprun(s0.aprun).unwrap();
        let outsider = (0..t.config().topology.n_nodes())
            .map(NodeId)
            .find(|n| !run.nodes.contains(n))
            .unwrap();
        assert!(engine.query(&[(s0.aprun, outsider)]).is_err());
    }

    #[test]
    fn lookback_windows_have_expected_lengths() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        // Find a run starting after 60 minutes.
        let s = t
            .samples()
            .iter()
            .find(|s| t.aprun(s.aprun).unwrap().start_min > 60)
            .expect("a run starting after minute 60");
        let st = &engine.query(&[(s.aprun, s.node)]).unwrap()[0];
        // All four look-back stats must be populated (non-default std
        // would be flaky; check the means are in physical range instead).
        for w in &st.prev_temp {
            assert!(w.mean > 10.0, "look-back temp mean {}", w.mean);
        }
        for w in &st.prev_power {
            assert!(w.mean > 4.0, "look-back power mean {}", w.mean);
        }
    }

    #[test]
    fn preseries_lengths_and_values_match_probe() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        let s = t
            .samples()
            .iter()
            .find(|s| t.aprun(s.aprun).unwrap().start_min > 100)
            .unwrap();
        let pre = engine.query_preseries(&[(s.aprun, s.node)], 60).unwrap();
        assert_eq!(pre.len(), 1);
        let (temp, power) = &pre[0];
        assert_eq!(temp.len(), 60);
        assert_eq!(power.len(), 60);
        let start = t.aprun(s.aprun).unwrap().start_min;
        let probe = engine
            .node_series(s.node, SeriesKind::GpuTemp, start - 60, start)
            .unwrap();
        assert_eq!(temp, &probe);
    }

    #[test]
    fn preseries_clipped_at_origin() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        // Any sample: lookback longer than the start must clip.
        let s = &t.samples()[0];
        let start = t.aprun(s.aprun).unwrap().start_min;
        let pre = engine
            .query_preseries(&[(s.aprun, s.node)], u64::MAX)
            .unwrap();
        assert_eq!(pre[0].0.len() as u64, start);
    }

    #[test]
    fn node_series_probe_works() {
        let t = trace();
        let engine = TelemetryQueryEngine::new(&t).unwrap();
        let v = engine
            .node_series(NodeId(3), SeriesKind::GpuTemp, 100, 200)
            .unwrap();
        assert_eq!(v.len(), 100);
        let avg = engine
            .slot_average_series(NodeId(3), SeriesKind::GpuTemp, 100, 200)
            .unwrap();
        assert_eq!(avg.len(), 100);
    }

    #[test]
    fn samples_cover_all_aprun_nodes() {
        let t = trace();
        let total: usize = t.apruns().iter().map(|r| r.nodes.len()).sum();
        assert_eq!(t.samples().len(), total);
    }
}
