//! Deterministic random-number utilities.
//!
//! Every stochastic component of the simulator derives its randomness from
//! the global seed plus a *stream label*, so that independent subsystems
//! (workload generation, per-slot telemetry noise, fault sampling) can be
//! re-simulated in isolation and in any order without perturbing each
//! other. This is what makes on-demand telemetry regeneration
//! (`engine::TelemetryQueryEngine`) bit-identical to the generation pass.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — used to derive well-mixed child seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a stream label.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut state = parent ^ 0x517c_c1b7_2722_0a95;
    for b in label.bytes() {
        state ^= b as u64;
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

/// Derives a child seed from a parent seed, a stream label, and an index
/// (e.g. a slot or node id).
pub fn derive_seed_indexed(parent: u64, label: &str, index: u64) -> u64 {
    let mut state = derive_seed(parent, label) ^ index.rotate_left(17);
    splitmix64(&mut state);
    splitmix64(&mut state)
}

/// Creates a seeded [`StdRng`] for the given stream.
pub fn stream_rng(parent: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, label))
}

/// Creates a seeded [`StdRng`] for the given indexed stream.
pub fn stream_rng_indexed(parent: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(parent, label, index))
}

/// A tiny, fast xorshift generator for per-minute telemetry noise, where
/// `StdRng`'s setup cost per stream would dominate.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximately standard-normal sample (sum of 4 uniforms, rescaled).
    /// Cheap and adequate for telemetry noise; not for tail-sensitive use.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        let s = self.next_f64() + self.next_f64() + self.next_f64() + self.next_f64();
        (s - 2.0) * (3.0f64).sqrt()
    }
}

/// A discretised Ornstein-Uhlenbeck process:
/// `x' = x + theta (mu - x) dt + sigma sqrt(dt) N(0,1)` with `dt = 1`.
///
/// Used for temperature and power noise that is correlated across
/// consecutive minutes (real telemetry is smooth, not white).
#[derive(Debug, Clone)]
pub struct OuProcess {
    theta: f64,
    mu: f64,
    sigma: f64,
    value: f64,
}

impl OuProcess {
    /// Creates an OU process starting at its mean.
    ///
    /// `theta` is the mean-reversion rate per step, `mu` the mean, and
    /// `sigma` the per-step noise scale. Values are clamped into sane
    /// ranges (`theta` into `[0, 1]`, `sigma >= 0`).
    pub fn new(theta: f64, mu: f64, sigma: f64) -> OuProcess {
        OuProcess {
            theta: theta.clamp(0.0, 1.0),
            mu,
            sigma: sigma.max(0.0),
            value: mu,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advances one step using `rng` for the innovation; returns the new
    /// value.
    #[inline]
    pub fn step(&mut self, rng: &mut XorShift64) -> f64 {
        self.value += self.theta * (self.mu - self.value) + self.sigma * rng.next_gaussian();
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
        assert_ne!(
            derive_seed_indexed(1, "slot", 0),
            derive_seed_indexed(1, "slot", 1)
        );
    }

    #[test]
    fn xorshift_uniform_range_and_mean() {
        let mut rng = XorShift64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn xorshift_gaussian_moments() {
        let mut rng = XorShift64::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let v = rng.next_gaussian();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zero_seed_remapped() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut rng = XorShift64::new(5);
        let mut ou = OuProcess::new(0.2, 10.0, 0.0);
        // Kick it away from the mean, then let it relax noiselessly.
        ou.value = 50.0;
        for _ in 0..100 {
            ou.step(&mut rng);
        }
        assert!((ou.value() - 10.0).abs() < 0.1);
    }

    #[test]
    fn ou_stationary_variance_close_to_theory() {
        // Var = sigma^2 / (2 theta - theta^2) for the exact discretisation;
        // for small theta ~ sigma^2 / (2 theta).
        let mut rng = XorShift64::new(13);
        let (theta, sigma) = (0.1, 0.5);
        let mut ou = OuProcess::new(theta, 0.0, sigma);
        let mut sq = 0.0;
        let n = 200_000;
        for _ in 0..n {
            let v = ou.step(&mut rng);
            sq += v * v;
        }
        let var = sq / n as f64;
        let theory = sigma * sigma / (2.0 * theta - theta * theta);
        assert!(
            (var - theory).abs() / theory < 0.1,
            "var {var} vs theory {theory}"
        );
    }

    #[test]
    fn stream_rngs_reproducible() {
        use rand::RngCore;
        let mut a = stream_rng_indexed(7, "telemetry", 3);
        let mut b = stream_rng_indexed(7, "telemetry", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
