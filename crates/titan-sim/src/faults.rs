//! The single-bit-error (SBE) fault process.
//!
//! GPU soft errors in the field are not uniformly random: the paper finds
//! that a small set of "offender" cards accounts for most errors, that
//! memory-heavy long-running applications see more errors, and that SBEs
//! correlate with elevated temperature — without a hard threshold. This
//! module implements a generative model with exactly those properties:
//!
//! * each GPU draws a latent *susceptibility*; a small weak subset draws
//!   from a heavy-tailed lognormal, the rest are orders of magnitude
//!   lower (but non-zero — previously clean nodes can still error),
//! * the SBE count of an (aprun, node) pair is Poisson with intensity
//!   `susceptibility × base_rate × app intensity × memory utilisation ×
//!   GPU core-hours × exp(beta (T − T0)) × daily flux`,
//! * the daily flux is a lognormal day-level multiplier with a slow
//!   upward trend, producing bursty error days and non-stationarity late
//!   in the trace.

use crate::apps::AppProfile;
use crate::config::{SimConfig, MINUTES_PER_DAY};
use crate::rng::stream_rng;
use crate::topology::NodeId;
use crate::{Result, SimError};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};
use serde::{Deserialize, Serialize};

/// The instantiated fault model: per-node susceptibilities and the daily
/// flux series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    susceptibility: Vec<f64>,
    weak: Vec<bool>,
    /// First day (inclusive) each node's weakness is active.
    active_from_day: Vec<u32>,
    /// Last day (exclusive) each node's weakness is active.
    active_until_day: Vec<u32>,
    daily_flux: Vec<f64>,
    base_rate: f64,
    temp_beta: f64,
    t0_c: f64,
    burst_per_hour: f64,
}

impl FaultModel {
    /// Draws susceptibilities and the daily flux from the configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn generate(cfg: &SimConfig) -> Result<FaultModel> {
        cfg.validate()?;
        let f = &cfg.fault;
        let n = cfg.topology.n_nodes() as usize;
        let mut rng = stream_rng(cfg.seed, "faults");
        // Median-1 lognormal for weak GPUs.
        let weak_dist = LogNormal::new(f.weak_susceptibility_mu, f.weak_susceptibility_sigma)?;
        let mut susceptibility = Vec::with_capacity(n);
        let mut weak = Vec::with_capacity(n);
        let mut active_from_day = Vec::with_capacity(n);
        let mut active_until_day = Vec::with_capacity(n);
        for _ in 0..n {
            let is_weak = rng.gen::<f64>() < f.weak_gpu_fraction;
            let s = if is_weak {
                weak_dist.sample(&mut rng)
            } else {
                f.healthy_relative_susceptibility * rng.gen::<f64>()
            };
            susceptibility.push(s);
            weak.push(is_weak);
            // Card churn: some weak GPUs only start erring mid-trace
            // (ageing onset), some get repaired/replaced mid-trace.
            let (mut from, mut until) = (0u32, cfg.days);
            if is_weak {
                if rng.gen::<f64>() < f.weak_onset_fraction {
                    from = rng.gen_range(0..cfg.days.max(1));
                }
                if rng.gen::<f64>() < f.weak_repair_fraction {
                    let earliest = from.saturating_add(1).min(cfg.days);
                    until = rng.gen_range(earliest..=cfg.days);
                }
            }
            active_from_day.push(from);
            active_until_day.push(until);
        }
        // Daily flux: lognormal with unit mean, ramped by the trend.
        let sigma = f.daily_flux_sigma;
        let flux_dist = LogNormal::new(-sigma * sigma / 2.0, sigma)?;
        let days = cfg.days as usize;
        let daily_flux = (0..days)
            .map(|d| {
                let ramp = 1.0 + f.flux_trend * d as f64 / days.max(1) as f64;
                flux_dist.sample(&mut rng) * ramp
            })
            .collect();
        Ok(FaultModel {
            susceptibility,
            weak,
            active_from_day,
            active_until_day,
            daily_flux,
            base_rate: f.base_rate,
            temp_beta: f.temp_beta,
            t0_c: f.t0_c,
            burst_per_hour: f.burst_per_hour,
        })
    }

    /// Latent susceptibility of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range nodes.
    pub fn susceptibility(&self, node: NodeId) -> Result<f64> {
        self.susceptibility
            .get(node.0 as usize)
            .copied()
            .ok_or(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            })
    }

    /// Ground-truth weak flag (used only by validation tests — a real
    /// operator never observes this).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range nodes.
    pub fn is_weak(&self, node: NodeId) -> Result<bool> {
        self.weak
            .get(node.0 as usize)
            .copied()
            .ok_or(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            })
    }

    /// The `[from_day, until_day)` window in which a node's weakness is
    /// active (`[0, days)` for stable cards).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range nodes.
    pub fn active_window(&self, node: NodeId) -> Result<(u32, u32)> {
        let idx = node.0 as usize;
        if idx >= self.weak.len() {
            return Err(SimError::UnknownEntity {
                kind: "node",
                id: node.0 as u64,
            });
        }
        Ok((self.active_from_day[idx], self.active_until_day[idx]))
    }

    /// Number of weak GPUs.
    pub fn n_weak(&self) -> usize {
        self.weak.iter().filter(|&&w| w).count()
    }

    /// The day-level flux multiplier.
    pub fn daily_flux(&self) -> &[f64] {
        &self.daily_flux
    }

    /// Poisson intensity for one (aprun, node) pair.
    ///
    /// `avg_temp_c` is the node's mean GPU temperature during the run;
    /// `runtime_min` the aprun duration on this node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range nodes.
    pub fn intensity(
        &self,
        node: NodeId,
        app: &AppProfile,
        runtime_min: u64,
        start_min: u64,
        avg_temp_c: f64,
    ) -> Result<f64> {
        let mut susc = self.susceptibility(node)?;
        let day = (start_min / MINUTES_PER_DAY) as usize;
        // Outside a weak card's active window it behaves near-healthy.
        let idx = node.0 as usize;
        if (day as u32) < self.active_from_day[idx] || (day as u32) >= self.active_until_day[idx] {
            susc *= 0.02;
        }
        let flux = self
            .daily_flux
            .get(day.min(self.daily_flux.len().saturating_sub(1)))
            .copied()
            .unwrap_or(1.0);
        // Utilisation dependencies are sub-linear: real SBE rates grow
        // with activity but errors also strike less-active runs, which is
        // what keeps the paper's temperature/power shift moderate
        // (≈ +3 °C / +15 W rather than a hard threshold).
        let active_hours = runtime_min as f64 / 60.0 * (0.35 + 0.65 * app.core_util);
        let mem_factor = app.mem_util.max(0.0).sqrt();
        let temp_factor = (self.temp_beta * (avg_temp_c - self.t0_c)).exp();
        Ok(self.base_rate
            * susc
            * app.sbe_intensity
            * mem_factor
            * active_hours
            * temp_factor
            * flux)
    }

    /// Samples an SBE count from a Poisson with the given intensity.
    ///
    /// Intensities are clamped to `1e6` to keep sampling finite.
    pub fn sample_count(&self, intensity: f64, rng: &mut StdRng) -> u32 {
        if intensity <= 0.0 {
            return 0;
        }
        let lambda = intensity.min(1e6);
        match Poisson::new(lambda) {
            Ok(d) => d.sample(rng) as u32,
            Err(_) => 0,
        }
    }

    /// Samples the SBE count of one (aprun, node) pair: a Poisson number
    /// of error *occurrences* with the given intensity, plus — when at
    /// least one occurs — a burst magnitude proportional to the run's GPU
    /// exposure (`burst_per_hour × exposure_hours`). Faulty cells tend to
    /// be struck repeatedly, which is what makes field SBE counts scale
    /// with core-hours (paper Fig. 4).
    pub fn sample_count_with_burst(
        &self,
        intensity: f64,
        exposure_hours: f64,
        rng: &mut StdRng,
    ) -> u32 {
        let occurrences = self.sample_count(intensity, rng);
        if occurrences == 0 || self.burst_per_hour == 0.0 {
            return occurrences;
        }
        let magnitude = (self.burst_per_hour * exposure_hours.max(0.0)).min(1e6);
        occurrences + self.sample_count(magnitude, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppCatalog;
    use crate::config::SimConfig;
    use rand::SeedableRng;

    fn model() -> (SimConfig, FaultModel) {
        let cfg = SimConfig::tiny(21);
        let fm = FaultModel::generate(&cfg).unwrap();
        (cfg, fm)
    }

    fn some_app(cfg: &SimConfig) -> AppProfile {
        let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).unwrap();
        let app = catalog
            .iter()
            .find(|(_, p)| p.is_error_prone())
            .map(|(_, p)| p.clone())
            .expect("catalogue has an error-prone app");
        app
    }

    #[test]
    fn weak_fraction_approximate() {
        let cfg = SimConfig::scaled(3);
        let fm = FaultModel::generate(&cfg).unwrap();
        let frac = fm.n_weak() as f64 / cfg.topology.n_nodes() as f64;
        let expect = cfg.fault.weak_gpu_fraction;
        assert!(
            (frac - expect).abs() < 0.02,
            "weak fraction {frac} vs configured {expect}"
        );
    }

    #[test]
    fn weak_nodes_much_more_susceptible() {
        let (cfg, fm) = model();
        let mut weak_min = f64::INFINITY;
        let mut healthy_max: f64 = 0.0;
        for node in cfg.topology.nodes() {
            let s = fm.susceptibility(node).unwrap();
            if fm.is_weak(node).unwrap() {
                weak_min = weak_min.min(s);
            } else {
                healthy_max = healthy_max.max(s);
            }
        }
        // Healthy cap is 0.4% of the weak median by construction.
        assert!(healthy_max < 0.01);
        assert!(weak_min > healthy_max || weak_min == f64::INFINITY);
    }

    #[test]
    fn intensity_increases_with_temperature() {
        let (cfg, fm) = model();
        let app = some_app(&cfg);
        let node = NodeId(0);
        let cold = fm.intensity(node, &app, 120, 0, 35.0).unwrap();
        let hot = fm.intensity(node, &app, 120, 0, 55.0).unwrap();
        assert!(hot > cold);
        // Ratio must equal exp(beta * 20) for the configured beta.
        let beta = cfg.fault.temp_beta;
        assert!((hot / cold.max(1e-300) - (beta * 20.0).exp()).abs() < 1e-6);
    }

    #[test]
    fn intensity_scales_linearly_with_runtime() {
        let (cfg, fm) = model();
        let app = some_app(&cfg);
        let node = NodeId(1);
        let short = fm.intensity(node, &app, 60, 0, 45.0).unwrap();
        let long = fm.intensity(node, &app, 240, 0, 45.0).unwrap();
        if short > 0.0 {
            assert!((long / short - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn flux_has_unit_scale_and_trend() {
        let cfg = SimConfig::scaled(5);
        let fm = FaultModel::generate(&cfg).unwrap();
        let flux = fm.daily_flux();
        assert_eq!(flux.len(), cfg.days as usize);
        let first_half: f64 = flux[..flux.len() / 2].iter().sum::<f64>() / (flux.len() / 2) as f64;
        let second_half: f64 =
            flux[flux.len() / 2..].iter().sum::<f64>() / (flux.len() - flux.len() / 2) as f64;
        // Trend pushes the later mean up.
        assert!(second_half > first_half * 0.9);
        assert!(flux.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn sample_count_zero_for_zero_intensity() {
        let (_, fm) = model();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(fm.sample_count(0.0, &mut rng), 0);
        assert_eq!(fm.sample_count(-1.0, &mut rng), 0);
    }

    #[test]
    fn sample_count_mean_close_to_intensity() {
        let (_, fm) = model();
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 3.0;
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| fm.sample_count(lambda, &mut rng) as u64)
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn unknown_node_rejected() {
        let (cfg, fm) = model();
        let bad = NodeId(cfg.topology.n_nodes());
        assert!(fm.susceptibility(bad).is_err());
        assert!(fm.is_weak(bad).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::tiny(9);
        let a = FaultModel::generate(&cfg).unwrap();
        let b = FaultModel::generate(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
