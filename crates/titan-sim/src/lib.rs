//! `titan-sim` — a generative trace simulator for a Titan-like GPU
//! supercomputer.
//!
//! The DSN 2018 study this workspace reproduces analysed six months of
//! closed operational traces from the Titan supercomputer: batch-job and
//! aprun records, `nvidia-smi` SBE snapshots taken at job boundaries, and
//! out-of-band GPU temperature / GPU power / CPU temperature readings
//! sampled roughly once a minute for every node. This crate regenerates
//! synthetic traces with the same schema and — by construction — the same
//! statistical structure the paper measures and exploits:
//!
//! * the Titan topology: a 25 × 8 cabinet grid, cages, slots of four
//!   nodes sharing Gemini routers ([`topology`]),
//! * a Zipf-popular application mix with heterogeneous runtimes, node
//!   counts, and GPU utilisation, plus a small error-prone subset
//!   ([`apps`]),
//! * batch jobs containing one or more apruns, allocated with spatial
//!   affinity ([`schedule`]),
//! * per-minute GPU temperature/power and CPU temperature driven by
//!   utilisation, a non-uniform ambient field, intra-slot thermal
//!   coupling, and Ornstein-Uhlenbeck noise ([`telemetry`]),
//! * a latent-susceptibility single-bit-error process whose intensity
//!   scales with memory utilisation, GPU core-hours, and elevated
//!   temperature ([`faults`]),
//! * trace records mirroring the paper's collection granularity — SBE
//!   counts are attributed at *job* boundaries, conservatively smearing
//!   errors over all apruns in the job ([`trace`]).
//!
//! The top-level entry point is [`engine::generate`], which returns a
//! [`trace::TraceSet`]. Telemetry is *procedurally* regenerable: window
//! statistics for any (aprun, node) pair can be recomputed on demand with
//! [`engine::TelemetryQueryEngine`] without storing minute-level series.
//!
//! # Example
//!
//! ```
//! use titan_sim::config::SimConfig;
//! use titan_sim::engine::generate;
//!
//! let cfg = SimConfig::tiny(7); // small deterministic system for tests
//! let trace = generate(&cfg)?;
//! assert!(trace.apruns().len() > 100);
//! let positives = trace.samples().iter().filter(|s| s.sbe_attributed > 0).count();
//! assert!(positives > 0);
//! # Ok::<(), titan_sim::SimError>(())
//! ```

pub mod apps;
pub mod config;
pub mod engine;
pub mod events;
pub mod faults;
pub mod rng;
pub mod schedule;
pub mod telemetry;
pub mod topology;
pub mod trace;

mod error;

pub use error::SimError;

/// Crate-wide `Result` alias using [`SimError`].
pub type Result<T> = std::result::Result<T, SimError>;
