//! The application catalogue.
//!
//! The paper identifies applications by their binary name and observes
//! that a small set of workloads (< 20%) experiences the vast majority
//! (> 90%) of SBEs, and that SBE counts correlate strongly with GPU
//! core-hours and GPU memory utilisation (Fig. 3–4). The catalogue is
//! generated to produce exactly this structure: Zipf-distributed
//! popularity, lognormal runtimes and node counts, and a small
//! error-prone subset whose high fault intensity co-varies with memory
//! utilisation.

use crate::config::WorkloadConfig;
use crate::rng::stream_rng;
use crate::{Result, SimError};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Index of an application in the catalogue.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AppId(pub u32);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Static profile of one application (one binary name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Binary name, e.g. `"chem_017"`.
    pub name: String,
    /// Relative submission popularity (un-normalised Zipf weight).
    pub popularity: f64,
    /// Log-mean of this app's runtime distribution (minutes).
    pub runtime_log_mean: f64,
    /// Log-sigma of this app's runtime distribution.
    pub runtime_log_sigma: f64,
    /// Log2-mean of this app's node-count distribution.
    pub node_count_log2_mean: f64,
    /// Log2-sigma of this app's node-count distribution.
    pub node_count_log2_sigma: f64,
    /// Mean GPU core utilisation in `[0.05, 1]`.
    pub core_util: f64,
    /// Mean GPU memory utilisation in `[0.05, 1]` (fraction of 6 GB).
    pub mem_util: f64,
    /// CPU utilisation in `[0.05, 1]` (drives CPU temperature).
    pub cpu_util: f64,
    /// Latent SBE intensity multiplier (error-prone apps ≫ others).
    pub sbe_intensity: f64,
    /// First day (inclusive) this application appears in the workload.
    pub available_from_day: u32,
}

impl AppProfile {
    /// `true` when this app belongs to the error-prone subset.
    pub fn is_error_prone(&self) -> bool {
        self.sbe_intensity >= 1.0
    }
}

/// The generated catalogue of applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCatalog {
    profiles: Vec<AppProfile>,
    /// Cumulative popularity for sampling, per day-availability handled at
    /// draw time.
    total_popularity: f64,
}

/// Domain prefixes used for generated binary names.
const DOMAINS: [&str; 8] = [
    "chem", "astro", "cfd", "climate", "lattice", "md", "fusion", "seismic",
];

impl AppCatalog {
    /// Generates a catalogue from the workload configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `n_applications == 0`.
    pub fn generate(cfg: &WorkloadConfig, seed: u64, trace_days: u32) -> Result<AppCatalog> {
        if cfg.n_applications == 0 {
            return Err(SimError::InvalidConfig {
                field: "workload.n_applications",
                reason: "must be > 0".into(),
            });
        }
        let mut rng = stream_rng(seed, "app-catalog");
        let n = cfg.n_applications;
        let n_prone = ((n as f64) * cfg.error_prone_fraction).round() as usize;
        let n_late = ((n as f64) * cfg.late_app_fraction).round() as usize;
        let late_start = trace_days.saturating_sub(trace_days / 4);

        let intensity_dist = LogNormal::new(1.0, 0.9)?;
        let mut profiles = Vec::with_capacity(n);
        for i in 0..n {
            // Zipf popularity by rank (rank order is the catalogue order).
            let popularity = 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent);
            let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
            let error_prone = i % (n / n_prone.max(1)).max(1) == 0 && n_prone > 0;
            // Error-prone apps lean memory-heavy and long-running: this
            // creates the paper's SBE <-> utilisation correlation (Fig. 4).
            let mem_util: f64 = if error_prone {
                rng.gen_range(0.35..0.90)
            } else {
                rng.gen_range(0.05..0.75)
            };
            let core_util: f64 =
                (mem_util * rng.gen_range(0.7..1.2) + rng.gen_range(0.0..0.25)).clamp(0.05, 1.0);
            let runtime_shift = if error_prone {
                rng.gen_range(0.2..0.8)
            } else {
                rng.gen_range(-0.4..0.4)
            };
            let sbe_intensity = if error_prone {
                intensity_dist.sample(&mut rng)
            } else {
                rng.gen_range(0.0..0.02)
            };
            let available_from_day = if i >= n - n_late { late_start } else { 0 };
            profiles.push(AppProfile {
                name: format!("{domain}_{i:03}"),
                popularity,
                runtime_log_mean: cfg.runtime_log_mean + runtime_shift,
                runtime_log_sigma: cfg.runtime_log_sigma * rng.gen_range(0.7..1.3),
                node_count_log2_mean: cfg.node_count_log2_mean + rng.gen_range(-1.0..1.0),
                node_count_log2_sigma: cfg.node_count_log2_sigma * rng.gen_range(0.6..1.2),
                core_util,
                mem_util,
                cpu_util: rng.gen_range(0.1..0.9),
                sbe_intensity,
                available_from_day,
            });
        }
        let total_popularity = profiles.iter().map(|p| p.popularity).sum();
        Ok(AppCatalog {
            profiles,
            total_popularity,
        })
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile for an application.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range ids.
    pub fn profile(&self, id: AppId) -> Result<&AppProfile> {
        self.profiles
            .get(id.0 as usize)
            .ok_or(SimError::UnknownEntity {
                kind: "application",
                id: id.0 as u64,
            })
    }

    /// Iterates over `(AppId, &AppProfile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &AppProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (AppId(i as u32), p))
    }

    /// Samples an application available on `day`, weighted by popularity.
    pub fn sample_app<R: Rng>(&self, rng: &mut R, day: u32) -> AppId {
        // Rejection-sample on availability; late apps are a small fraction
        // so this terminates quickly. Falls back to app 0 (always
        // available) after a bounded number of attempts.
        for _ in 0..64 {
            let mut target = rng.gen::<f64>() * self.total_popularity;
            for (i, p) in self.profiles.iter().enumerate() {
                target -= p.popularity;
                if target <= 0.0 {
                    if p.available_from_day <= day {
                        return AppId(i as u32);
                    }
                    break;
                }
            }
        }
        AppId(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn catalog() -> AppCatalog {
        AppCatalog::generate(&WorkloadConfig::default(), 7, 150).unwrap()
    }

    #[test]
    fn generates_requested_count() {
        let c = catalog();
        assert_eq!(c.len(), WorkloadConfig::default().n_applications);
        assert!(!c.is_empty());
    }

    #[test]
    fn error_prone_fraction_approx() {
        let c = catalog();
        let prone = c.iter().filter(|(_, p)| p.is_error_prone()).count();
        let expect = (c.len() as f64 * WorkloadConfig::default().error_prone_fraction) as usize;
        assert!(
            prone.abs_diff(expect) <= expect / 2 + 2,
            "prone {prone} vs expected ~{expect}"
        );
    }

    #[test]
    fn error_prone_apps_are_memory_heavy() {
        let c = catalog();
        let mean = |f: bool| {
            let v: Vec<f64> = c
                .iter()
                .filter(|(_, p)| p.is_error_prone() == f)
                .map(|(_, p)| p.mem_util)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(true) > mean(false) + 0.1);
    }

    #[test]
    fn utilisations_in_range() {
        let c = catalog();
        for (_, p) in c.iter() {
            assert!((0.05..=1.0).contains(&p.core_util));
            assert!((0.0..=1.0).contains(&p.mem_util));
            assert!((0.05..=1.0).contains(&p.cpu_util));
            assert!(p.sbe_intensity >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = AppCatalog::generate(&WorkloadConfig::default(), 7, 150).unwrap();
        let b = AppCatalog::generate(&WorkloadConfig::default(), 7, 150).unwrap();
        assert_eq!(a, b);
        let c = AppCatalog::generate(&WorkloadConfig::default(), 8, 150).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sampling_respects_availability() {
        let c = catalog();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let id = c.sample_app(&mut rng, 0);
            assert_eq!(c.profile(id).unwrap().available_from_day, 0);
        }
    }

    #[test]
    fn sampling_is_popularity_skewed() {
        let c = catalog();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut head = 0;
        let n = 2_000;
        for _ in 0..n {
            let id = c.sample_app(&mut rng, 100);
            if (id.0 as usize) < c.len() / 5 {
                head += 1;
            }
        }
        // Zipf(1.1): top 20% of apps should receive well over half the draws.
        assert!(
            head as f64 / n as f64 > 0.6,
            "head fraction {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn unknown_app_rejected() {
        let c = catalog();
        assert!(c.profile(AppId(c.len() as u32)).is_err());
    }

    #[test]
    fn zero_apps_rejected() {
        let cfg = WorkloadConfig {
            n_applications: 0,
            ..WorkloadConfig::default()
        };
        assert!(AppCatalog::generate(&cfg, 1, 150).is_err());
    }

    #[test]
    fn late_apps_exist() {
        let c = catalog();
        let late = c.iter().filter(|(_, p)| p.available_from_day > 0).count();
        assert!(late > 0);
    }
}
