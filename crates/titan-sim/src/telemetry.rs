//! Per-minute GPU/CPU telemetry simulation.
//!
//! The paper's facility collected GPU temperature, GPU power, and CPU
//! temperature out-of-band roughly once per minute for every node. This
//! module regenerates such series *procedurally*: given the global seed,
//! the slot id, and the workload timelines, the series for any slot can be
//! re-simulated bit-identically at any time — so no minute-level data ever
//! needs to be stored.
//!
//! The physical model per node and minute:
//!
//! * **power** = idle + utilisation × (TDP − idle) + OU noise,
//! * **ambient** = base + spatial field (hot upper-left / lower-right
//!   corners, as in the paper's Fig. 5a) + diurnal cycle,
//! * **GPU temperature** relaxes toward
//!   `ambient + k·power + k_nei·(average power of slot neighbours)` with
//!   configurable thermal inertia, plus OU noise — neighbouring nodes in
//!   the same slot measurably heat each other (paper §III-C3),
//! * **CPU temperature** relaxes toward `ambient + rise × cpu-utilisation`.

use crate::apps::AppCatalog;
use crate::config::{SimConfig, MINUTES_PER_DAY};
use crate::rng::{derive_seed_indexed, OuProcess, XorShift64};
use crate::schedule::{NodeInterval, Schedule};
use crate::topology::{NodeId, SlotId};
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Which telemetry series of a node to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeriesKind {
    /// GPU die temperature (°C).
    GpuTemp,
    /// GPU board power (W).
    GpuPower,
    /// CPU package temperature (°C).
    CpuTemp,
}

/// Summary statistics of a telemetry window, exactly the four per-series
/// features the paper engineers (§V-A): mean and standard deviation of the
/// level, and mean and standard deviation of consecutive differences.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Mean of the series.
    pub mean: f32,
    /// Population standard deviation of the series.
    pub std: f32,
    /// Mean of consecutive differences.
    pub diff_mean: f32,
    /// Population standard deviation of consecutive differences.
    pub diff_std: f32,
}

/// Computes [`WindowStats`] over a slice; all-zero for empty input.
pub fn window_stats(xs: &[f32]) -> WindowStats {
    if xs.is_empty() {
        return WindowStats::default();
    }
    let n = xs.len() as f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    for &x in xs {
        s1 += x as f64;
        s2 += (x as f64) * (x as f64);
    }
    let mean = s1 / n;
    let var = (s2 / n - mean * mean).max(0.0);
    let (dmean, dstd) = if xs.len() < 2 {
        (0.0, 0.0)
    } else {
        let dn = (xs.len() - 1) as f64;
        let mut d1 = 0.0f64;
        let mut d2 = 0.0f64;
        for w in xs.windows(2) {
            let d = (w[1] - w[0]) as f64;
            d1 += d;
            d2 += d * d;
        }
        let dm = d1 / dn;
        (dm, (d2 / dn - dm * dm).max(0.0).sqrt())
    };
    WindowStats {
        mean: mean as f32,
        std: var.sqrt() as f32,
        diff_mean: dmean as f32,
        diff_std: dstd as f32,
    }
}

/// Per-aprun utilisation levels, pre-resolved from the app catalogue.
#[derive(Debug, Clone, Copy)]
struct RunUtil {
    core: f32,
    cpu: f32,
}

/// Procedural telemetry generator bound to a configuration and workload.
#[derive(Debug)]
pub struct TelemetrySimulator<'a> {
    cfg: &'a SimConfig,
    timelines: Vec<Vec<NodeInterval>>,
    run_util: Vec<RunUtil>,
}

impl<'a> TelemetrySimulator<'a> {
    /// Builds a simulator for the given workload.
    ///
    /// # Errors
    ///
    /// Propagates catalogue lookup errors for dangling app references.
    pub fn new(
        cfg: &'a SimConfig,
        schedule: &Schedule,
        catalog: &AppCatalog,
    ) -> Result<TelemetrySimulator<'a>> {
        let mut run_util = Vec::with_capacity(schedule.apruns().len());
        for run in schedule.apruns() {
            let p = catalog.profile(run.app_id)?;
            run_util.push(RunUtil {
                core: p.core_util as f32,
                cpu: p.cpu_util as f32,
            });
        }
        Ok(TelemetrySimulator {
            cfg,
            timelines: schedule.node_timelines(cfg.topology.n_nodes() as usize),
            run_util,
        })
    }

    /// The ambient temperature at cabinet `(x, y)` and `minute`.
    ///
    /// Hot spots sit at the upper-left `(0, grid_y-1)` and lower-right
    /// `(grid_x-1, 0)` corners of the floor grid, matching the paper's
    /// Fig. 5(a); a small diurnal sine is superimposed.
    pub fn ambient_c(&self, cabinet_x: u16, cabinet_y: u16, minute: u64) -> f64 {
        self.cfg.telemetry.ambient_base_c
            + self.spatial_c(cabinet_x, cabinet_y)
            + self.diurnal_c(cabinet_x, cabinet_y, minute)
    }

    /// The static spatial component of the ambient field.
    fn spatial_c(&self, cabinet_x: u16, cabinet_y: u16) -> f64 {
        let t = &self.cfg.telemetry;
        let gx = self.cfg.topology.grid_x() as f64;
        let gy = self.cfg.topology.grid_y() as f64;
        let x = cabinet_x as f64;
        let y = cabinet_y as f64;
        // Distance to the two hot corners, scaled by grid size.
        let sigma2 = (gx * gx + gy * gy) / 18.0;
        let d1 = x * x + (gy - 1.0 - y) * (gy - 1.0 - y);
        let d2 = (gx - 1.0 - x) * (gx - 1.0 - x) + y * y;
        t.ambient_spatial_amp_c * ((-d1 / (2.0 * sigma2)).exp() + (-d2 / (2.0 * sigma2)).exp())
    }

    /// The diurnal component of the ambient field.
    fn diurnal_c(&self, cabinet_x: u16, cabinet_y: u16, minute: u64) -> f64 {
        let t = &self.cfg.telemetry;
        let phase = (cabinet_x as u64 * 31 + cabinet_y as u64 * 17) as f64;
        t.ambient_diurnal_amp_c
            * ((minute as f64 / MINUTES_PER_DAY as f64 * std::f64::consts::TAU) + phase).sin()
    }

    /// Simulates the full horizon for one slot, returning all member
    /// nodes' series.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an out-of-range slot.
    pub fn simulate_slot(&self, slot: SlotId) -> Result<SlotSeries> {
        self.simulate_slot_range(slot, 0, self.cfg.total_minutes())
    }

    /// Simulates minutes `[start, end)` for one slot.
    ///
    /// Note: the OU noise state is evolved from minute 0 regardless of
    /// `start` so that any sub-range is consistent with the full-horizon
    /// simulation. The cost of a range query is therefore proportional to
    /// `end`, not `end - start`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an out-of-range slot and
    /// [`SimError::InvalidTimeRange`] for an empty or out-of-horizon range.
    pub fn simulate_slot_range(
        &self,
        slot: SlotId,
        start_min: u64,
        end_min: u64,
    ) -> Result<SlotSeries> {
        let topo = &self.cfg.topology;
        let nodes = topo.slot_members(slot)?;
        let horizon = self.cfg.total_minutes();
        if start_min >= end_min || end_min > horizon {
            return Err(SimError::InvalidTimeRange {
                start: start_min,
                end: end_min,
                horizon,
            });
        }
        let t = &self.cfg.telemetry;
        let k = nodes.len();
        let len = (end_min - start_min) as usize;

        // Per-node state.
        let mut rngs: Vec<XorShift64> = nodes
            .iter()
            .map(|n| {
                XorShift64::new(derive_seed_indexed(
                    self.cfg.seed,
                    "telemetry-node",
                    n.0 as u64,
                ))
            })
            .collect();
        let mut power_noise: Vec<OuProcess> = (0..k)
            .map(|_| OuProcess::new(t.power_ou_theta, 0.0, t.power_ou_sigma))
            .collect();
        let mut temp_noise: Vec<OuProcess> = (0..k)
            .map(|_| OuProcess::new(t.temp_ou_theta, 0.0, t.temp_ou_sigma))
            .collect();
        let mut cpu_noise: Vec<OuProcess> = (0..k)
            .map(|_| OuProcess::new(t.temp_ou_theta, 0.0, t.temp_ou_sigma * 0.6))
            .collect();
        // Interval cursors into each node's timeline.
        let mut cursors = vec![0usize; k];
        let locs: Vec<_> = nodes
            .iter()
            .map(|&n| topo.location(n))
            .collect::<Result<_>>()?;

        // Static ambient component per member; the diurnal term is shared
        // because slot members never straddle a cabinet.
        let amb_static: Vec<f64> = locs
            .iter()
            .map(|l| t.ambient_base_c + self.spatial_c(l.cabinet_x, l.cabinet_y))
            .collect();

        // Thermal state initialised at idle steady state.
        let mut gpu_temp_state: Vec<f64> = locs
            .iter()
            .map(|l| self.ambient_c(l.cabinet_x, l.cabinet_y, 0) + t.temp_per_watt * t.idle_power_w)
            .collect();
        let mut cpu_temp_state: Vec<f64> = locs
            .iter()
            .map(|l| self.ambient_c(l.cabinet_x, l.cabinet_y, 0) + 2.0)
            .collect();

        let mut out = SlotSeries {
            slot,
            start_min,
            nodes: nodes.clone(),
            gpu_temp: vec![Vec::with_capacity(len); k],
            gpu_power: vec![Vec::with_capacity(len); k],
            cpu_temp: vec![Vec::with_capacity(len); k],
            slot_temp_sum: Vec::with_capacity(len),
            slot_power_sum: Vec::with_capacity(len),
        };

        let mut powers = vec![0.0f64; k];
        for minute in 0..end_min {
            let record = minute >= start_min;
            let diurnal = self.diurnal_c(locs[0].cabinet_x, locs[0].cabinet_y, minute);
            // 1) Utilisation and power for every node this minute.
            for i in 0..k {
                let node = nodes[i];
                let tl = &self.timelines[node.0 as usize];
                let mut cur = cursors[i];
                while cur < tl.len() && tl[cur].end_min <= minute {
                    cur += 1;
                }
                cursors[i] = cur;
                let (core_util, _cpu_util) = self.util_at(tl, cur, minute);
                let target = t.idle_power_w + core_util as f64 * (t.tdp_power_w - t.idle_power_w);
                let p = (target + power_noise[i].step(&mut rngs[i])).max(5.0);
                powers[i] = p;
            }
            let power_sum: f64 = powers.iter().sum();

            // 2) Temperatures using the slot's power field.
            let mut temp_sum = 0.0f64;
            for i in 0..k {
                let node = nodes[i];
                let tl = &self.timelines[node.0 as usize];
                let (_, cpu_util) = self.util_at(tl, cursors[i], minute);
                let amb = amb_static[i] + diurnal;
                let nei_avg = if k > 1 {
                    (power_sum - powers[i]) / (k - 1) as f64
                } else {
                    0.0
                };
                let target = amb + t.temp_per_watt * powers[i] + t.neighbor_temp_per_watt * nei_avg;
                gpu_temp_state[i] += t.thermal_inertia * (target - gpu_temp_state[i]);
                let temp = gpu_temp_state[i] + temp_noise[i].step(&mut rngs[i]);

                let cpu_target = amb + t.cpu_temp_rise_c * cpu_util as f64;
                cpu_temp_state[i] += t.thermal_inertia * (cpu_target - cpu_temp_state[i]);
                let ctemp = cpu_temp_state[i] + cpu_noise[i].step(&mut rngs[i]);

                temp_sum += temp;
                if record {
                    out.gpu_temp[i].push(temp as f32);
                    out.gpu_power[i].push(powers[i] as f32);
                    out.cpu_temp[i].push(ctemp as f32);
                }
            }
            if record {
                out.slot_temp_sum.push(temp_sum as f32);
                out.slot_power_sum.push(power_sum as f32);
            }
        }
        Ok(out)
    }

    /// Returns `(core_util, cpu_util)` at `minute` for a node timeline with
    /// the cursor already advanced past finished intervals.
    #[inline]
    fn util_at(&self, tl: &[NodeInterval], cursor: usize, minute: u64) -> (f32, f32) {
        if cursor < tl.len() && tl[cursor].start_min <= minute && minute < tl[cursor].end_min {
            let u = self.run_util[tl[cursor].aprun.0 as usize];
            (u.core, u.cpu)
        } else {
            (0.0, 0.0)
        }
    }
}

/// The simulated telemetry of one slot over a minute range.
#[derive(Debug, Clone)]
pub struct SlotSeries {
    slot: SlotId,
    start_min: u64,
    nodes: Vec<NodeId>,
    gpu_temp: Vec<Vec<f32>>,
    gpu_power: Vec<Vec<f32>>,
    cpu_temp: Vec<Vec<f32>>,
    slot_temp_sum: Vec<f32>,
    slot_power_sum: Vec<f32>,
}

impl SlotSeries {
    /// The slot simulated.
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// First simulated minute.
    pub fn start_min(&self) -> u64 {
        self.start_min
    }

    /// Number of simulated minutes.
    pub fn len(&self) -> usize {
        self.slot_temp_sum.len()
    }

    /// `true` when no minutes were simulated.
    pub fn is_empty(&self) -> bool {
        self.slot_temp_sum.is_empty()
    }

    /// Member nodes in id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn member_index(&self, node: NodeId) -> Result<usize> {
        self.nodes
            .iter()
            .position(|&n| n == node)
            .ok_or(SimError::UnknownEntity {
                kind: "slot member",
                id: node.0 as u64,
            })
    }

    fn clip(&self, start_min: u64, end_min: u64) -> Result<(usize, usize)> {
        let len = self.len() as u64;
        if start_min < self.start_min || end_min <= start_min || end_min - self.start_min > len {
            return Err(SimError::InvalidTimeRange {
                start: start_min,
                end: end_min,
                horizon: self.start_min + len,
            });
        }
        Ok((
            (start_min - self.start_min) as usize,
            (end_min - self.start_min) as usize,
        ))
    }

    /// Borrows one node's series over `[start_min, end_min)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] when `node` is not a member and
    /// [`SimError::InvalidTimeRange`] for a range outside the simulation.
    pub fn series(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<&[f32]> {
        let i = self.member_index(node)?;
        let (lo, hi) = self.clip(start_min, end_min)?;
        let v = match kind {
            SeriesKind::GpuTemp => &self.gpu_temp[i],
            SeriesKind::GpuPower => &self.gpu_power[i],
            SeriesKind::CpuTemp => &self.cpu_temp[i],
        };
        Ok(&v[lo..hi])
    }

    /// [`WindowStats`] of one node's series over `[start_min, end_min)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlotSeries::series`].
    pub fn stats(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<WindowStats> {
        Ok(window_stats(self.series(node, kind, start_min, end_min)?))
    }

    /// [`WindowStats`] of the *slot-neighbour average* (all members except
    /// `node`) for GPU temperature or power.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for [`SeriesKind::CpuTemp`]
    /// (CPU telemetry is per-node only in the paper), plus the range and
    /// membership errors of [`SlotSeries::series`].
    pub fn neighbor_stats(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<WindowStats> {
        let i = self.member_index(node)?;
        let (lo, hi) = self.clip(start_min, end_min)?;
        let (own, sums) = match kind {
            SeriesKind::GpuTemp => (&self.gpu_temp[i], &self.slot_temp_sum),
            SeriesKind::GpuPower => (&self.gpu_power[i], &self.slot_power_sum),
            SeriesKind::CpuTemp => {
                return Err(SimError::InvalidConfig {
                    field: "kind",
                    reason: "slot-neighbour CPU temperature is not collected".into(),
                })
            }
        };
        let k = self.nodes.len();
        if k < 2 {
            return Ok(WindowStats::default());
        }
        let inv = 1.0 / (k - 1) as f32;
        let nei: Vec<f32> = (lo..hi).map(|t| (sums[t] - own[t]) * inv).collect();
        Ok(window_stats(&nei))
    }

    /// Mean of one node's series over a range (shortcut used by the fault
    /// model, which only needs averages).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlotSeries::series`].
    pub fn mean(
        &self,
        node: NodeId,
        kind: SeriesKind,
        start_min: u64,
        end_min: u64,
    ) -> Result<f64> {
        let s = self.series(node, kind, start_min, end_min)?;
        if s.is_empty() {
            return Ok(0.0);
        }
        Ok(s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppCatalog;
    use crate::config::SimConfig;
    use crate::schedule::Schedule;

    fn setup() -> (SimConfig, Schedule, AppCatalog) {
        let cfg = SimConfig::tiny(11);
        let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).unwrap();
        let sched = Schedule::generate(&cfg, &catalog).unwrap();
        (cfg, sched, catalog)
    }

    #[test]
    fn window_stats_hand_computed() {
        let s = window_stats(&[1.0, 2.0, 4.0]);
        assert!((s.mean - 7.0 / 3.0).abs() < 1e-5);
        // diffs: [1, 2] -> mean 1.5, var 0.25
        assert!((s.diff_mean - 1.5).abs() < 1e-5);
        assert!((s.diff_std - 0.5).abs() < 1e-5);
        assert_eq!(window_stats(&[]), WindowStats::default());
        let single = window_stats(&[3.0]);
        assert_eq!(single.mean, 3.0);
        assert_eq!(single.diff_std, 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let a = sim.simulate_slot_range(SlotId(0), 0, 500).unwrap();
        let b = sim.simulate_slot_range(SlotId(0), 0, 500).unwrap();
        assert_eq!(a.gpu_temp, b.gpu_temp);
        assert_eq!(a.gpu_power, b.gpu_power);
    }

    #[test]
    fn range_query_matches_full_simulation() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let full = sim.simulate_slot_range(SlotId(1), 0, 800).unwrap();
        let sub = sim.simulate_slot_range(SlotId(1), 300, 800).unwrap();
        let node = sub.nodes()[0];
        let a = full.series(node, SeriesKind::GpuTemp, 300, 800).unwrap();
        let b = sub.series(node, SeriesKind::GpuTemp, 300, 800).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn busy_nodes_run_hotter_and_draw_more_power() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let timelines = sched.node_timelines(cfg.topology.n_nodes() as usize);
        // Find a long-ish busy interval.
        let mut pick = None;
        'outer: for (node, tl) in timelines.iter().enumerate() {
            for iv in tl {
                if iv.end_min - iv.start_min >= 60 && iv.start_min > 120 {
                    pick = Some((NodeId(node as u32), *iv));
                    break 'outer;
                }
            }
        }
        let (node, iv) = pick.expect("tiny workload has a >=60 min run");
        let slot = cfg.topology.slot_of(node).unwrap();
        let series = sim.simulate_slot(slot).unwrap();
        let busy_t = series
            .mean(node, SeriesKind::GpuTemp, iv.start_min + 10, iv.end_min)
            .unwrap();
        let busy_p = series
            .mean(node, SeriesKind::GpuPower, iv.start_min + 10, iv.end_min)
            .unwrap();
        // Compare to the window right before the run starts (idle or not,
        // power at idle is the common case in the tiny config).
        let idle_p = series
            .mean(
                node,
                SeriesKind::GpuPower,
                iv.start_min.saturating_sub(60),
                iv.start_min,
            )
            .unwrap();
        assert!(busy_p > idle_p + 10.0, "busy {busy_p} vs idle {idle_p}");
        assert!(busy_t > cfg.telemetry.ambient_base_c, "busy temp {busy_t}");
    }

    #[test]
    fn ambient_hot_corners() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let gx = cfg.topology.grid_x();
        let gy = cfg.topology.grid_y();
        let hot1 = sim.ambient_c(0, gy - 1, 0);
        let hot2 = sim.ambient_c(gx - 1, 0, 0);
        let centre = sim.ambient_c(gx / 2, gy / 2, 0);
        assert!(hot1 > centre);
        assert!(hot2 > centre);
    }

    #[test]
    fn neighbor_stats_average_others() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let series = sim.simulate_slot_range(SlotId(0), 0, 100).unwrap();
        let nodes = series.nodes().to_vec();
        let target = nodes[0];
        let nei = series
            .neighbor_stats(target, SeriesKind::GpuPower, 0, 100)
            .unwrap();
        // Manual average of the other three nodes' means.
        let mut acc = 0.0;
        for &n in &nodes[1..] {
            acc += series.mean(n, SeriesKind::GpuPower, 0, 100).unwrap();
        }
        let manual = acc / (nodes.len() - 1) as f64;
        assert!(
            (nei.mean as f64 - manual).abs() < 0.05,
            "{} vs {manual}",
            nei.mean
        );
    }

    #[test]
    fn invalid_ranges_rejected() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        assert!(sim.simulate_slot_range(SlotId(0), 10, 10).is_err());
        assert!(sim
            .simulate_slot_range(SlotId(0), 0, cfg.total_minutes() + 1)
            .is_err());
        assert!(sim.simulate_slot_range(SlotId(9999), 0, 10).is_err());
        let series = sim.simulate_slot_range(SlotId(0), 100, 200).unwrap();
        let node = series.nodes()[0];
        assert!(series.series(node, SeriesKind::GpuTemp, 0, 50).is_err());
        assert!(series.series(node, SeriesKind::GpuTemp, 150, 250).is_err());
        assert!(series
            .series(NodeId(9_999), SeriesKind::GpuTemp, 100, 150)
            .is_err());
    }

    #[test]
    fn cpu_neighbor_stats_rejected() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let series = sim.simulate_slot_range(SlotId(0), 0, 10).unwrap();
        let node = series.nodes()[0];
        assert!(series
            .neighbor_stats(node, SeriesKind::CpuTemp, 0, 10)
            .is_err());
    }

    #[test]
    fn temperatures_physically_plausible() {
        let (cfg, sched, catalog) = setup();
        let sim = TelemetrySimulator::new(&cfg, &sched, &catalog).unwrap();
        let series = sim.simulate_slot_range(SlotId(2), 0, 2_000).unwrap();
        for &n in series.nodes() {
            let s = series.series(n, SeriesKind::GpuTemp, 0, 2_000).unwrap();
            for &v in s {
                assert!((10.0..95.0).contains(&v), "temp {v} out of range");
            }
            let p = series.series(n, SeriesKind::GpuPower, 0, 2_000).unwrap();
            for &v in p {
                assert!((5.0..320.0).contains(&v), "power {v} out of range");
            }
        }
    }
}
