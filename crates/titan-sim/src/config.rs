//! Simulation configuration.

use crate::topology::Topology;
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Minutes per simulated day.
pub const MINUTES_PER_DAY: u64 = 1_440;

/// Workload-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of distinct applications in the catalogue.
    pub n_applications: usize,
    /// Zipf popularity exponent across applications.
    pub zipf_exponent: f64,
    /// Fraction of applications that are error-prone (high SBE intensity).
    pub error_prone_fraction: f64,
    /// Mean batch-job arrivals per day.
    pub jobs_per_day: f64,
    /// Mean apruns per batch job (>= 1; geometric-ish).
    pub mean_apruns_per_job: f64,
    /// Log-mean of the per-aprun runtime distribution (minutes).
    pub runtime_log_mean: f64,
    /// Log-sigma of the per-aprun runtime distribution.
    pub runtime_log_sigma: f64,
    /// Maximum runtime in minutes (wall-clock limit).
    pub max_runtime_min: u64,
    /// Log2-mean of the node-count distribution.
    pub node_count_log2_mean: f64,
    /// Log2-sigma of the node-count distribution.
    pub node_count_log2_sigma: f64,
    /// Fraction of applications only introduced in the final quarter of
    /// the trace (models software-stack churn; makes the last test window
    /// harder, like the paper's DS3).
    pub late_app_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            n_applications: 240,
            zipf_exponent: 1.1,
            error_prone_fraction: 0.15,
            jobs_per_day: 260.0,
            mean_apruns_per_job: 1.5,
            runtime_log_mean: 4.4, // exp(4.4) ~ 81 min
            runtime_log_sigma: 0.9,
            max_runtime_min: 24 * 60,
            node_count_log2_mean: 3.0, // ~8 nodes
            node_count_log2_sigma: 1.6,
            late_app_fraction: 0.10,
        }
    }
}

/// Telemetry-simulation parameters (temperatures in °C, power in watts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Machine-room base ambient temperature.
    pub ambient_base_c: f64,
    /// Amplitude of the spatial ambient field (hot corners).
    pub ambient_spatial_amp_c: f64,
    /// Amplitude of the diurnal ambient cycle.
    pub ambient_diurnal_amp_c: f64,
    /// GPU idle power draw.
    pub idle_power_w: f64,
    /// GPU power draw at full utilisation (K20X TDP ≈ 235 W).
    pub tdp_power_w: f64,
    /// Temperature rise per watt of own GPU power.
    pub temp_per_watt: f64,
    /// Temperature rise per watt of *average slot-neighbour* power
    /// (intra-slot thermal coupling).
    pub neighbor_temp_per_watt: f64,
    /// OU mean-reversion rate for GPU temperature noise.
    pub temp_ou_theta: f64,
    /// OU noise scale for GPU temperature.
    pub temp_ou_sigma: f64,
    /// OU mean-reversion rate for GPU power noise.
    pub power_ou_theta: f64,
    /// OU noise scale for GPU power.
    pub power_ou_sigma: f64,
    /// CPU temperature rise at full CPU utilisation.
    pub cpu_temp_rise_c: f64,
    /// Thermal low-pass coefficient in `[0,1)`: per-minute fraction of the
    /// gap between current and target temperature that is closed
    /// (models thermal inertia).
    pub thermal_inertia: f64,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            ambient_base_c: 26.0,
            ambient_spatial_amp_c: 3.0,
            ambient_diurnal_amp_c: 1.0,
            idle_power_w: 42.0,
            tdp_power_w: 235.0,
            temp_per_watt: 0.11,
            neighbor_temp_per_watt: 0.035,
            temp_ou_theta: 0.08,
            temp_ou_sigma: 0.45,
            power_ou_theta: 0.25,
            power_ou_sigma: 3.0,
            cpu_temp_rise_c: 18.0,
            thermal_inertia: 0.35,
        }
    }
}

/// Fault-process parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Fraction of GPUs with elevated (weak) susceptibility.
    pub weak_gpu_fraction: f64,
    /// Log-mean of the lognormal susceptibility among weak GPUs.
    /// Negative values make the *typical* weak GPU error rarely while the
    /// heavy tail carries most errors (so most offender nodes error on few
    /// days, as in the paper's §III-A).
    pub weak_susceptibility_mu: f64,
    /// Log-sigma of the lognormal susceptibility among weak GPUs.
    pub weak_susceptibility_sigma: f64,
    /// Susceptibility multiplier for healthy GPUs relative to the weak
    /// median (rare errors on previously clean nodes).
    pub healthy_relative_susceptibility: f64,
    /// Base SBE intensity scale (errors per weak-GPU node-hour at
    /// reference conditions).
    pub base_rate: f64,
    /// Exponential temperature sensitivity (per °C above `t0_c`).
    pub temp_beta: f64,
    /// Reference temperature for the exponential factor.
    pub t0_c: f64,
    /// Expected extra SBEs per GPU core-hour of exposure once a run has
    /// at least one error (a faulty cell struck repeatedly): makes SBE
    /// counts scale with exposure, producing the paper's strong
    /// count/core-hours Spearman correlation (Fig. 4).
    pub burst_per_hour: f64,
    /// Log-sigma of the day-level global flux multiplier.
    pub daily_flux_sigma: f64,
    /// Linear ramp of the flux over the trace: the expected flux at the
    /// end of the trace is `1 + flux_trend` times the start (makes late
    /// test windows drift, like the paper's hard DS3).
    pub flux_trend: f64,
    /// Fraction of weak GPUs whose susceptibility only *onsets* at a
    /// random day inside the trace (ageing cards): fresh offender nodes
    /// that stage-1 history cannot know about yet.
    pub weak_onset_fraction: f64,
    /// Fraction of weak GPUs that get *repaired* (susceptibility drops to
    /// near-zero) at a random day inside the trace (card replacement).
    pub weak_repair_fraction: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            weak_gpu_fraction: 0.045,
            weak_susceptibility_mu: -0.8,
            weak_susceptibility_sigma: 2.0,
            healthy_relative_susceptibility: 0.00002,
            base_rate: 0.90,
            temp_beta: 0.030,
            t0_c: 45.0,
            burst_per_hour: 3.0,
            daily_flux_sigma: 0.7,
            flux_trend: 0.6,
            weak_onset_fraction: 0.30,
            weak_repair_fraction: 0.25,
        }
    }
}

/// Top-level simulation configuration.
///
/// # Example
///
/// ```
/// use titan_sim::config::SimConfig;
///
/// let cfg = SimConfig::scaled(42);
/// assert_eq!(cfg.days, 150);
/// cfg.validate()?;
/// # Ok::<(), titan_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Global seed; all randomness derives from it.
    pub seed: u64,
    /// Machine geometry.
    pub topology: Topology,
    /// Trace length in days.
    pub days: u32,
    /// Workload-generation parameters.
    pub workload: WorkloadConfig,
    /// Telemetry parameters.
    pub telemetry: TelemetryConfig,
    /// Fault-process parameters.
    pub fault: FaultConfig,
    /// Worker-thread policy for generation and telemetry queries. An
    /// execution detail, not part of the simulated world: any policy
    /// produces bit-identical traces (see `parkit`), so it is excluded
    /// from serialized configs.
    #[serde(skip)]
    pub threads: parkit::Threads,
}

impl SimConfig {
    /// Workstation-scale default: the paper's 25 × 8 cabinet grid with
    /// 1,600 nodes and a 150-day trace (≈ the paper's Feb–Jun window).
    pub fn scaled(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            // detlint: allow(D004) reason=preset constructor; dimensions are compile-time constants covered by topology unit tests
            topology: Topology::scaled().expect("static dimensions are valid"),
            days: 150,
            workload: WorkloadConfig::default(),
            telemetry: TelemetryConfig::default(),
            fault: FaultConfig::default(),
            threads: parkit::Threads::Auto,
        }
    }

    /// Sets the worker-thread policy (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: parkit::Threads) -> SimConfig {
        self.threads = threads;
        self
    }

    /// Full-Titan geometry (19,200 node positions). Expensive; provided
    /// for completeness and scalability benches.
    pub fn titan_scale(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::scaled(seed);
        // detlint: allow(D004) reason=preset constructor; dimensions are compile-time constants covered by topology unit tests
        cfg.topology = Topology::titan().expect("static dimensions are valid");
        // Titan ran far more concurrent work.
        cfg.workload.jobs_per_day = 2_600.0;
        cfg
    }

    /// Tiny deterministic system for unit tests: 64 nodes, 30 days.
    pub fn tiny(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::scaled(seed);
        // detlint: allow(D004) reason=preset constructor; dimensions are compile-time constants covered by topology unit tests
        cfg.topology = Topology::tiny().expect("static dimensions are valid");
        cfg.days = 30;
        cfg.workload.n_applications = 40;
        cfg.workload.jobs_per_day = 18.0;
        cfg.workload.node_count_log2_mean = 1.5;
        cfg.workload.node_count_log2_sigma = 1.0;
        // Small systems need a higher weak fraction for enough positives.
        cfg.fault.weak_gpu_fraction = 0.12;
        cfg
    }

    /// Total simulated minutes.
    pub fn total_minutes(&self) -> u64 {
        self.days as u64 * MINUTES_PER_DAY
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(SimError::InvalidConfig {
                field: "days",
                reason: "must be > 0".into(),
            });
        }
        let w = &self.workload;
        if w.n_applications == 0 {
            return Err(SimError::InvalidConfig {
                field: "workload.n_applications",
                reason: "must be > 0".into(),
            });
        }
        for (field, v) in [
            ("workload.zipf_exponent", w.zipf_exponent),
            ("workload.jobs_per_day", w.jobs_per_day),
            ("workload.runtime_log_sigma", w.runtime_log_sigma),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(SimError::InvalidConfig {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        for (field, v) in [
            ("workload.error_prone_fraction", w.error_prone_fraction),
            ("workload.late_app_fraction", w.late_app_fraction),
            ("fault.weak_gpu_fraction", self.fault.weak_gpu_fraction),
            ("fault.weak_onset_fraction", self.fault.weak_onset_fraction),
            (
                "fault.weak_repair_fraction",
                self.fault.weak_repair_fraction,
            ),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::InvalidConfig {
                    field,
                    reason: format!("must be in [0, 1], got {v}"),
                });
            }
        }
        if w.mean_apruns_per_job < 1.0 {
            return Err(SimError::InvalidConfig {
                field: "workload.mean_apruns_per_job",
                reason: format!("must be >= 1, got {}", w.mean_apruns_per_job),
            });
        }
        if w.max_runtime_min == 0 {
            return Err(SimError::InvalidConfig {
                field: "workload.max_runtime_min",
                reason: "must be > 0".into(),
            });
        }
        let t = &self.telemetry;
        if t.tdp_power_w <= t.idle_power_w {
            return Err(SimError::InvalidConfig {
                field: "telemetry.tdp_power_w",
                reason: format!(
                    "TDP ({}) must exceed idle power ({})",
                    t.tdp_power_w, t.idle_power_w
                ),
            });
        }
        if !(0.0..1.0).contains(&t.thermal_inertia) {
            return Err(SimError::InvalidConfig {
                field: "telemetry.thermal_inertia",
                reason: format!("must be in [0, 1), got {}", t.thermal_inertia),
            });
        }
        let f = &self.fault;
        if f.base_rate <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "fault.base_rate",
                reason: format!("must be positive, got {}", f.base_rate),
            });
        }
        if f.burst_per_hour < 0.0 || !f.burst_per_hour.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "fault.burst_per_hour",
                reason: format!("must be non-negative and finite, got {}", f.burst_per_hour),
            });
        }
        if f.healthy_relative_susceptibility < 0.0 || f.healthy_relative_susceptibility > 1.0 {
            return Err(SimError::InvalidConfig {
                field: "fault.healthy_relative_susceptibility",
                reason: format!(
                    "must be in [0, 1], got {}",
                    f.healthy_relative_susceptibility
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::scaled(1).validate().unwrap();
        SimConfig::titan_scale(1).validate().unwrap();
        SimConfig::tiny(1).validate().unwrap();
    }

    #[test]
    fn total_minutes() {
        let cfg = SimConfig::tiny(1);
        assert_eq!(cfg.total_minutes(), 30 * 1_440);
    }

    #[test]
    fn invalid_values_rejected() {
        let mut cfg = SimConfig::tiny(1);
        cfg.days = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.workload.jobs_per_day = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.workload.error_prone_fraction = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.telemetry.tdp_power_w = cfg.telemetry.idle_power_w;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.fault.base_rate = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.workload.mean_apruns_per_job = 0.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::tiny(1);
        cfg.telemetry.thermal_inertia = 1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn clone_and_eq() {
        let cfg = SimConfig::scaled(9);
        let cloned = cfg.clone();
        assert_eq!(cfg, cloned);
    }
}
