//! Time-ordered replay events over a finished trace.
//!
//! A deployed predictor does not see a trace as a table — it sees a
//! *stream*: application launches arriving at the scheduler, SBE snapshot
//! deltas appearing when jobs end, and the wall clock ticking. This
//! module linearises a [`TraceSet`] into exactly that stream so an online
//! scoring loop can replay history the way a daemon would have lived it.
//!
//! Ordering contract (the determinism the stream/batch parity suite
//! relies on): events are sorted by minute; within one minute the order
//! is [`TraceEvent::Tick`] first, then [`TraceEvent::Launch`]es in aprun
//! id order, then [`TraceEvent::SbeVisible`] deltas in (job, node) order.
//! A launch at minute `t` therefore observes strictly less than `t` of
//! history — the same strict-visibility rule the batch `SbeHistory`
//! queries implement.

use crate::apps::AppId;
use crate::schedule::{ApRunId, JobId};
use crate::topology::NodeId;
use crate::trace::TraceSet;
use crate::Result;
use std::collections::BTreeMap;

/// One event of the replayed trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A minute boundary. Emitted for every minute of the horizon, before
    /// that minute's launches; drives time-based work such as batch-flush
    /// deadlines.
    Tick {
        /// The minute starting now.
        minute: u64,
    },
    /// An application run starts on its allocation.
    Launch {
        /// Start minute of the run.
        minute: u64,
        /// The run's id (resolve details via [`TraceSet::aprun`]).
        aprun: ApRunId,
    },
    /// A job-boundary SBE snapshot delta becomes visible: `count` new
    /// SBEs attributed to (`job`, `node`), observable from `minute` on.
    SbeVisible {
        /// The minute the owning job ended.
        minute: u64,
        /// The job whose boundary snapshot revealed the delta.
        job: JobId,
        /// The node the errors were counted on.
        node: NodeId,
        /// The application the delta is attributed to.
        app: AppId,
        /// The per-node SBE delta.
        count: u32,
    },
}

impl TraceEvent {
    /// The minute the event occurs at.
    pub fn minute(&self) -> u64 {
        match self {
            TraceEvent::Tick { minute }
            | TraceEvent::Launch { minute, .. }
            | TraceEvent::SbeVisible { minute, .. } => *minute,
        }
    }
}

/// An iterator replaying a trace as a time-ordered [`TraceEvent`] stream.
///
/// Construction indexes the trace once; iteration is lazy and allocation
/// free.
#[derive(Debug)]
pub struct EventStream {
    /// `(start_min, aprun)` sorted ascending.
    launches: Vec<(u64, ApRunId)>,
    /// `(visible_at, job, node, app, count)` sorted ascending.
    sbe_events: Vec<(u64, JobId, NodeId, AppId, u32)>,
    /// One past the last minute that gets a tick.
    horizon: u64,
    minute: u64,
    li: usize,
    si: usize,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Tick,
    Launches,
    Sbes,
}

impl EventStream {
    /// Builds the stream for `trace`.
    ///
    /// SBE visibility follows the trace's observability rule: each
    /// positive (job, node) pair yields one event at the minute the
    /// job's *last* aprun ends — the moment the job-boundary
    /// `nvidia-smi` snapshot would have been taken.
    ///
    /// # Errors
    ///
    /// Propagates trace lookup errors (never expected for a well-formed
    /// trace).
    pub fn new(trace: &TraceSet) -> Result<EventStream> {
        let mut launches: Vec<(u64, ApRunId)> =
            trace.apruns().iter().map(|r| (r.start_min, r.id)).collect();
        launches.sort_unstable();

        // Last end per job = the job-boundary snapshot minute.
        let mut job_end: BTreeMap<u32, u64> = BTreeMap::new();
        for r in trace.apruns() {
            let e = job_end.entry(r.job_id.0).or_insert(0);
            *e = (*e).max(r.end_min);
        }
        // One event per positive (job, node); the attributed delta is the
        // same on every aprun of the job, so keep the first seen (samples
        // are sorted by (aprun, node), matching `SbeHistory::build`).
        let mut job_node: BTreeMap<(u32, u32), (u64, AppId, u32)> = BTreeMap::new();
        for s in trace.samples() {
            if s.sbe_attributed == 0 {
                continue;
            }
            let run = trace.aprun(s.aprun)?;
            job_node.entry((run.job_id.0, s.node.0)).or_insert((
                job_end.get(&run.job_id.0).copied().unwrap_or(run.end_min),
                run.app_id,
                s.sbe_attributed,
            ));
        }
        let mut sbe_events: Vec<(u64, JobId, NodeId, AppId, u32)> = job_node
            .iter()
            .map(|(&(job, node), &(t, app, c))| (t, JobId(job), NodeId(node), app, c))
            .collect();
        sbe_events.sort_unstable_by_key(|&(t, job, node, _, _)| (t, job, node));

        let mut horizon = trace.config().total_minutes();
        if let Some(&(t, _)) = launches.last() {
            horizon = horizon.max(t + 1);
        }
        if let Some(&(t, _, _, _, _)) = sbe_events.last() {
            horizon = horizon.max(t + 1);
        }
        Ok(EventStream {
            launches,
            sbe_events,
            horizon,
            minute: 0,
            li: 0,
            si: 0,
            phase: Phase::Tick,
        })
    }

    /// One past the last ticked minute.
    pub fn horizon_min(&self) -> u64 {
        self.horizon
    }

    /// Total number of launch events the stream will emit.
    pub fn n_launches(&self) -> usize {
        self.launches.len()
    }

    /// Total number of SBE visibility events the stream will emit.
    pub fn n_sbe_events(&self) -> usize {
        self.sbe_events.len()
    }
}

impl Iterator for EventStream {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            if self.minute >= self.horizon {
                return None;
            }
            match self.phase {
                Phase::Tick => {
                    self.phase = Phase::Launches;
                    return Some(TraceEvent::Tick {
                        minute: self.minute,
                    });
                }
                Phase::Launches => {
                    if let Some(&(t, aprun)) = self.launches.get(self.li) {
                        if t == self.minute {
                            self.li += 1;
                            return Some(TraceEvent::Launch { minute: t, aprun });
                        }
                    }
                    self.phase = Phase::Sbes;
                }
                Phase::Sbes => {
                    if let Some(&(t, job, node, app, count)) = self.sbe_events.get(self.si) {
                        if t == self.minute {
                            self.si += 1;
                            return Some(TraceEvent::SbeVisible {
                                minute: t,
                                job,
                                node,
                                app,
                                count,
                            });
                        }
                    }
                    self.minute += 1;
                    self.phase = Phase::Tick;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::generate;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(3)).unwrap()
    }

    #[test]
    fn stream_is_time_ordered_with_intra_minute_phases() {
        let t = trace();
        let stream = EventStream::new(&t).unwrap();
        let mut last_minute = 0u64;
        let mut last_phase = 0u8; // 0 tick, 1 launch, 2 sbe
        let mut last_launch_id = None;
        for ev in stream {
            let m = ev.minute();
            assert!(m >= last_minute, "minute went backwards");
            if m > last_minute {
                last_minute = m;
                last_phase = 0;
                last_launch_id = None;
            }
            let phase = match ev {
                TraceEvent::Tick { .. } => 0,
                TraceEvent::Launch { aprun, .. } => {
                    if let Some(prev) = last_launch_id {
                        assert!(aprun > prev, "launches not in id order");
                    }
                    last_launch_id = Some(aprun);
                    1
                }
                TraceEvent::SbeVisible { .. } => 2,
            };
            assert!(phase >= last_phase, "intra-minute phase order violated");
            last_phase = phase;
        }
    }

    #[test]
    fn every_aprun_launches_exactly_once() {
        let t = trace();
        let stream = EventStream::new(&t).unwrap();
        assert_eq!(stream.n_launches(), t.apruns().len());
        let mut seen = std::collections::BTreeSet::new();
        for ev in stream {
            if let TraceEvent::Launch { minute, aprun } = ev {
                assert!(seen.insert(aprun), "duplicate launch");
                assert_eq!(t.aprun(aprun).unwrap().start_min, minute);
            }
        }
        assert_eq!(seen.len(), t.apruns().len());
    }

    #[test]
    fn sbe_events_reconcile_with_job_level_totals() {
        let t = trace();
        let stream = EventStream::new(&t).unwrap();
        // Sum per (job, node) once, like the trace's offender accounting.
        let mut expected = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for s in t.samples() {
            let run = t.aprun(s.aprun).unwrap();
            if s.sbe_attributed > 0 && seen.insert((run.job_id.0, s.node.0)) {
                expected += s.sbe_attributed as u64;
            }
        }
        let mut total = 0u64;
        let mut n = 0usize;
        for ev in stream {
            if let TraceEvent::SbeVisible {
                minute, job, count, ..
            } = ev
            {
                total += count as u64;
                n += 1;
                // Visible exactly when the job's last aprun ends.
                let job_end = t
                    .apruns()
                    .iter()
                    .filter(|r| r.job_id == job)
                    .map(|r| r.end_min)
                    .max()
                    .unwrap();
                assert_eq!(minute, job_end);
                assert!(count > 0);
            }
        }
        assert_eq!(total, expected);
        assert_eq!(n, seen.len());
        assert!(n > 0);
    }

    #[test]
    fn ticks_cover_the_horizon_exactly_once() {
        let t = trace();
        let stream = EventStream::new(&t).unwrap();
        let horizon = stream.horizon_min();
        let mut next_expected = 0u64;
        for ev in stream {
            if let TraceEvent::Tick { minute } = ev {
                assert_eq!(minute, next_expected);
                next_expected += 1;
            }
        }
        assert_eq!(next_expected, horizon);
        assert!(horizon >= t.config().total_minutes());
    }
}
