//! Trace records — the data a downstream analyst actually observes.
//!
//! The observable schema deliberately mirrors the paper's collection
//! pipeline. In particular, SBE counters are read by `nvidia-smi` only at
//! batch-job boundaries, so per-aprun error counts are *not* observable:
//! the job-level per-node delta is conservatively attributed to every
//! aprun in the job ([`SampleRecord::sbe_attributed`]). The per-aprun
//! ground truth is retained as [`SampleRecord::sbe_true`] for severity
//! analysis and calibration tests, clearly marked as hidden information.

use crate::apps::{AppCatalog, AppId};
use crate::config::SimConfig;
use crate::schedule::{ApRun, ApRunId, Job, Schedule};
use crate::topology::NodeId;
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One (aprun, node) observation — the unit the paper's classifier labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// The application run.
    pub aprun: ApRunId,
    /// The node observed.
    pub node: NodeId,
    /// Mean GPU temperature during the run (°C) — out-of-band telemetry.
    pub avg_gpu_temp_c: f32,
    /// Mean GPU power during the run (W) — out-of-band telemetry.
    pub avg_gpu_power_w: f32,
    /// Ground-truth SBE count of this aprun on this node.
    ///
    /// Hidden in the real system; kept for calibration/severity analysis.
    pub sbe_true: u32,
    /// Job-level SBE delta on this node, attributed to every aprun of the
    /// job — what the `nvidia-smi` snapshot pipeline observes.
    pub sbe_attributed: u32,
    /// Ground-truth double-bit-error count — far rarer than SBEs (the
    /// paper deems DBEs "statistically unsuitable for prediction"); kept
    /// for realism and rate checks, not used as a prediction target.
    pub dbe_true: u32,
}

impl SampleRecord {
    /// `true` when the observable pipeline labels this sample SBE-affected.
    pub fn is_affected(&self) -> bool {
        self.sbe_attributed > 0
    }
}

/// A complete generated trace: configuration, workload, and samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    config: SimConfig,
    catalog: AppCatalog,
    schedule: Schedule,
    samples: Vec<SampleRecord>,
    /// `sample_ranges[aprun] = (offset, len)` into `samples`.
    sample_ranges: Vec<(u32, u32)>,
    /// Per-node sum of GPU temperature over every simulated minute.
    node_cum_temp: Vec<f64>,
    /// Per-node sum of GPU power over every simulated minute.
    node_cum_power: Vec<f64>,
}

impl TraceSet {
    /// Assembles a trace set; used by [`crate::engine::generate`].
    ///
    /// `samples` must be sorted by `(aprun, node)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when samples are out of order
    /// or cumulative vectors have the wrong length.
    pub(crate) fn assemble(
        config: SimConfig,
        catalog: AppCatalog,
        schedule: Schedule,
        mut samples: Vec<SampleRecord>,
        node_cum_temp: Vec<f64>,
        node_cum_power: Vec<f64>,
    ) -> Result<TraceSet> {
        let n_nodes = config.topology.n_nodes() as usize;
        if node_cum_temp.len() != n_nodes || node_cum_power.len() != n_nodes {
            return Err(SimError::InvalidConfig {
                field: "node_cum_temp/power",
                reason: format!(
                    "expected {n_nodes} entries, got {}/{}",
                    node_cum_temp.len(),
                    node_cum_power.len()
                ),
            });
        }
        samples.sort_unstable_by_key(|s| (s.aprun, s.node));

        // Job-level attribution: sum sbe_true per (job, node), then write
        // the total back into every aprun of that job on that node.
        let mut job_node: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for s in &samples {
            let job = schedule.apruns()[s.aprun.0 as usize].job_id;
            *job_node.entry((job.0, s.node.0)).or_insert(0) += s.sbe_true;
        }
        for s in &mut samples {
            let job = schedule.apruns()[s.aprun.0 as usize].job_id;
            s.sbe_attributed = job_node[&(job.0, s.node.0)];
        }

        // Per-aprun ranges.
        let mut sample_ranges = vec![(0u32, 0u32); schedule.apruns().len()];
        let mut i = 0usize;
        while i < samples.len() {
            let run = samples[i].aprun;
            let start = i;
            while i < samples.len() && samples[i].aprun == run {
                i += 1;
            }
            sample_ranges[run.0 as usize] = (start as u32, (i - start) as u32);
        }

        Ok(TraceSet {
            config,
            catalog,
            schedule,
            samples,
            sample_ranges,
            node_cum_temp,
            node_cum_power,
        })
    }

    /// The configuration the trace was generated from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The application catalogue.
    pub fn catalog(&self) -> &AppCatalog {
        &self.catalog
    }

    /// All batch jobs.
    pub fn jobs(&self) -> &[Job] {
        self.schedule.jobs()
    }

    /// All apruns.
    pub fn apruns(&self) -> &[ApRun] {
        self.schedule.apruns()
    }

    /// The full workload.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// All (aprun, node) samples, sorted by `(aprun, node)`.
    pub fn samples(&self) -> &[SampleRecord] {
        &self.samples
    }

    /// The samples of one aprun.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range ids.
    pub fn samples_of(&self, aprun: ApRunId) -> Result<&[SampleRecord]> {
        let (off, len) =
            *self
                .sample_ranges
                .get(aprun.0 as usize)
                .ok_or(SimError::UnknownEntity {
                    kind: "aprun",
                    id: aprun.0 as u64,
                })?;
        Ok(&self.samples[off as usize..(off + len) as usize])
    }

    /// The aprun record for an id.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range ids.
    pub fn aprun(&self, id: ApRunId) -> Result<&ApRun> {
        self.schedule
            .apruns()
            .get(id.0 as usize)
            .ok_or(SimError::UnknownEntity {
                kind: "aprun",
                id: id.0 as u64,
            })
    }

    /// The application executed by an aprun.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for out-of-range ids.
    pub fn app_of(&self, id: ApRunId) -> Result<AppId> {
        Ok(self.aprun(id)?.app_id)
    }

    /// Per-node cumulative GPU temperature (sum over all trace minutes) —
    /// the quantity behind the paper's Fig. 5(a).
    pub fn node_cum_temp(&self) -> &[f64] {
        &self.node_cum_temp
    }

    /// Per-node cumulative GPU power — behind Fig. 5(b).
    pub fn node_cum_power(&self) -> &[f64] {
        &self.node_cum_power
    }

    /// Nodes that see at least one (attributed) SBE anywhere in the trace
    /// — the trace-wide "offender node" set.
    pub fn offender_nodes(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.config.topology.n_nodes() as usize];
        for s in &self.samples {
            if s.sbe_attributed > 0 {
                seen[s.node.0 as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Total double-bit errors in the trace (rare by construction).
    pub fn total_dbes(&self) -> u64 {
        self.samples.iter().map(|s| s.dbe_true as u64).sum()
    }

    /// Total (true) single-bit errors in the trace.
    pub fn total_sbes(&self) -> u64 {
        self.samples.iter().map(|s| s.sbe_true as u64).sum()
    }

    /// Fraction of samples that are SBE-affected.
    pub fn positive_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.is_affected()).count() as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::generate;

    fn trace() -> TraceSet {
        generate(&SimConfig::tiny(31)).unwrap()
    }

    #[test]
    fn samples_sorted_and_indexed() {
        let t = trace();
        for w in t.samples().windows(2) {
            assert!((w[0].aprun, w[0].node) < (w[1].aprun, w[1].node));
        }
        for run in t.apruns() {
            let ss = t.samples_of(run.id).unwrap();
            assert_eq!(ss.len(), run.nodes.len());
            for s in ss {
                assert_eq!(s.aprun, run.id);
                assert!(run.nodes.contains(&s.node));
            }
        }
    }

    #[test]
    fn attribution_smears_job_errors_over_apruns() {
        let t = trace();
        // For every job and node: every aprun's attributed count equals
        // the sum of true counts over the job's apruns on that node.
        for job in t.jobs() {
            if job.aprun_ids.len() < 2 {
                continue;
            }
            let nodes = &t.aprun(job.aprun_ids[0]).unwrap().nodes;
            for &node in nodes {
                let total: u32 = job
                    .aprun_ids
                    .iter()
                    .flat_map(|&id| t.samples_of(id).unwrap())
                    .filter(|s| s.node == node)
                    .map(|s| s.sbe_true)
                    .sum();
                for &id in &job.aprun_ids {
                    let s = t
                        .samples_of(id)
                        .unwrap()
                        .iter()
                        .find(|s| s.node == node)
                        .unwrap();
                    assert_eq!(s.sbe_attributed, total);
                }
            }
        }
    }

    #[test]
    fn attributed_at_least_true() {
        let t = trace();
        for s in t.samples() {
            assert!(s.sbe_attributed >= s.sbe_true);
        }
    }

    #[test]
    fn offender_nodes_consistent_with_samples() {
        let t = trace();
        let offenders = t.offender_nodes();
        assert!(!offenders.is_empty());
        for s in t.samples() {
            if s.sbe_attributed > 0 {
                assert!(offenders.contains(&s.node));
            }
        }
    }

    #[test]
    fn cumulative_vectors_sized_and_positive() {
        let t = trace();
        let n = t.config().topology.n_nodes() as usize;
        assert_eq!(t.node_cum_temp().len(), n);
        assert_eq!(t.node_cum_power().len(), n);
        assert!(t.node_cum_temp().iter().all(|&v| v > 0.0));
        assert!(t.node_cum_power().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn dbes_are_much_rarer_than_sbes() {
        let t = trace();
        let sbes = t.total_sbes();
        let dbes = t.total_dbes();
        assert!(sbes > 0);
        assert!(
            dbes * 10 < sbes.max(10),
            "dbes {dbes} not rare relative to sbes {sbes}"
        );
    }

    #[test]
    fn unknown_ids_rejected() {
        let t = trace();
        let bad = ApRunId(t.apruns().len() as u32);
        assert!(t.aprun(bad).is_err());
        assert!(t.samples_of(bad).is_err());
    }
}
