use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An invalid configuration value was supplied.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A referenced entity (node, aprun, application) does not exist.
    UnknownEntity {
        /// Entity kind, e.g. `"node"`.
        kind: &'static str,
        /// The offending identifier.
        id: u64,
    },
    /// A time range is empty or out of the simulated horizon.
    InvalidTimeRange {
        /// Range start (minutes).
        start: u64,
        /// Range end (minutes, exclusive).
        end: u64,
        /// Simulation horizon (minutes).
        horizon: u64,
    },
}

impl From<rand_distr::Error> for SimError {
    /// Distribution-construction failures are configuration errors: the
    /// parameters always come from a (validated) config field.
    fn from(e: rand_distr::Error) -> SimError {
        SimError::InvalidConfig {
            field: "distribution",
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            SimError::UnknownEntity { kind, id } => {
                write!(f, "unknown {kind} with id {id}")
            }
            SimError::InvalidTimeRange {
                start,
                end,
                horizon,
            } => {
                write!(
                    f,
                    "invalid time range [{start}, {end}) for horizon {horizon} minutes"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        let e = SimError::UnknownEntity {
            kind: "node",
            id: 9,
        };
        assert_eq!(e.to_string(), "unknown node with id 9");
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
