//! Batch-job and aprun generation plus node allocation.
//!
//! A *batch job* is a set of applications submitted simultaneously by the
//! same user; *apruns* (application runs) execute sequentially inside the
//! job on the job's node allocation. The SBE counter is read at job start
//! and job end (`nvidia-smi` snapshot semantics), which is why the paper —
//! and this simulator's dataset builder — conservatively attributes a
//! job's errors to *all* of its apruns.
//!
//! Allocation scans forward from a random origin for free nodes, which
//! yields spatially clustered (cabinet-local) placements like a real
//! scheduler's.

use crate::apps::{AppCatalog, AppId};
use crate::config::{SimConfig, MINUTES_PER_DAY};
use crate::rng::stream_rng;
use crate::topology::NodeId;
use crate::Result;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};
use serde::{Deserialize, Serialize};

/// Identifier of an application run (aprun).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ApRunId(pub u32);

/// Identifier of a batch job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId(pub u32);

/// One application run inside a batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApRun {
    /// Unique id (index into [`Schedule::apruns`]).
    pub id: ApRunId,
    /// Owning batch job.
    pub job_id: JobId,
    /// Application executed.
    pub app_id: AppId,
    /// Start minute (inclusive).
    pub start_min: u64,
    /// End minute (exclusive); `end_min > start_min`.
    pub end_min: u64,
    /// Nodes allocated (shared by all apruns of the job).
    pub nodes: Vec<NodeId>,
}

impl ApRun {
    /// Runtime in minutes.
    pub fn runtime_min(&self) -> u64 {
        self.end_min - self.start_min
    }

    /// GPU core-hours consumed (`runtime × nodes / 60`), before
    /// utilisation weighting.
    pub fn node_hours(&self) -> f64 {
        self.runtime_min() as f64 * self.nodes.len() as f64 / 60.0
    }
}

/// One batch job: simultaneous submission of one or more apruns by a user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (index into [`Schedule::jobs`]).
    pub id: JobId,
    /// Synthetic user id.
    pub user: u32,
    /// Submission minute.
    pub submit_min: u64,
    /// Apruns in execution order.
    pub aprun_ids: Vec<ApRunId>,
}

/// A busy interval on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInterval {
    /// Start minute (inclusive).
    pub start_min: u64,
    /// End minute (exclusive).
    pub end_min: u64,
    /// The aprun occupying the node.
    pub aprun: ApRunId,
}

/// The complete generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    jobs: Vec<Job>,
    apruns: Vec<ApRun>,
}

impl Schedule {
    /// Generates the workload for a configuration and catalogue.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn generate(cfg: &SimConfig, catalog: &AppCatalog) -> Result<Schedule> {
        cfg.validate()?;
        let mut rng = stream_rng(cfg.seed, "schedule");
        let n_nodes = cfg.topology.n_nodes() as usize;
        let horizon = cfg.total_minutes();
        // Cap single allocations to a fraction of the machine.
        let max_alloc = (n_nodes / 4).max(1);

        // Per-node next-free time.
        let mut free_at = vec![0u64; n_nodes];

        // Job arrivals, chronologically.
        let mut arrivals: Vec<(u64, u32)> = Vec::new(); // (minute, day)
        let poisson = Poisson::new(cfg.workload.jobs_per_day)?;
        for day in 0..cfg.days {
            let n_jobs = poisson.sample(&mut rng) as usize;
            for _ in 0..n_jobs {
                let minute = day as u64 * MINUTES_PER_DAY + rng.gen_range(0..MINUTES_PER_DAY);
                arrivals.push((minute, day));
            }
        }
        arrivals.sort_unstable();

        let mut jobs = Vec::new();
        let mut apruns: Vec<ApRun> = Vec::new();
        for (submit_min, day) in arrivals {
            let app_id = catalog.sample_app(&mut rng, day);
            let profile = catalog.profile(app_id)?;

            // Apruns per job: 1 + Poisson(mean - 1).
            let extra = if cfg.workload.mean_apruns_per_job > 1.0 {
                Poisson::new(cfg.workload.mean_apruns_per_job - 1.0)
                    .map(|d| d.sample(&mut rng) as usize)
                    .unwrap_or(0)
            } else {
                0
            };
            let n_apruns = 1 + extra.min(5);

            // Per-aprun runtimes from the app's lognormal.
            let runtime_dist = LogNormal::new(profile.runtime_log_mean, profile.runtime_log_sigma)?;
            let runtimes: Vec<u64> = (0..n_apruns)
                .map(|_| {
                    (runtime_dist.sample(&mut rng) as u64).clamp(5, cfg.workload.max_runtime_min)
                })
                .collect();
            let total: u64 = runtimes.iter().sum();
            if submit_min + total > horizon {
                continue; // would run past the trace end
            }

            // Node count: round(2^N(mean, sigma)).
            let want = (2f64
                .powf(
                    profile.node_count_log2_mean
                        + rng.gen::<f64>().mul_add(2.0, -1.0) * profile.node_count_log2_sigma,
                )
                .round() as usize)
                .clamp(1, max_alloc);

            // Scan for free nodes from a random origin (spatial affinity).
            let origin = rng.gen_range(0..n_nodes);
            let mut nodes = Vec::with_capacity(want);
            for off in 0..n_nodes {
                let idx = (origin + off) % n_nodes;
                if free_at[idx] <= submit_min {
                    nodes.push(NodeId(idx as u32));
                    if nodes.len() == want {
                        break;
                    }
                }
            }
            if nodes.is_empty() {
                continue; // machine full at this instant
            }
            nodes.sort_unstable();

            let job_id = JobId(jobs.len() as u32);
            let mut aprun_ids = Vec::with_capacity(n_apruns);
            let mut t = submit_min;
            for rt in runtimes {
                let id = ApRunId(apruns.len() as u32);
                apruns.push(ApRun {
                    id,
                    job_id,
                    app_id,
                    start_min: t,
                    end_min: t + rt,
                    nodes: nodes.clone(),
                });
                aprun_ids.push(id);
                t += rt;
            }
            for n in &nodes {
                free_at[n.0 as usize] = t;
            }
            jobs.push(Job {
                id: job_id,
                user: rng.gen_range(0..1_000),
                submit_min,
                aprun_ids,
            });
        }
        Ok(Schedule { jobs, apruns })
    }

    /// All batch jobs, chronologically.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// All apruns; `apruns()[i].id == ApRunId(i)`.
    pub fn apruns(&self) -> &[ApRun] {
        &self.apruns
    }

    /// Per-node busy timelines (sorted, non-overlapping intervals).
    pub fn node_timelines(&self, n_nodes: usize) -> Vec<Vec<NodeInterval>> {
        let mut out: Vec<Vec<NodeInterval>> = vec![Vec::new(); n_nodes];
        for run in &self.apruns {
            for n in &run.nodes {
                out[n.0 as usize].push(NodeInterval {
                    start_min: run.start_min,
                    end_min: run.end_min,
                    aprun: run.id,
                });
            }
        }
        for tl in &mut out {
            tl.sort_unstable_by_key(|iv| iv.start_min);
        }
        out
    }

    /// Machine utilisation: busy node-minutes / capacity node-minutes.
    pub fn utilization(&self, n_nodes: usize, horizon_min: u64) -> f64 {
        if n_nodes == 0 || horizon_min == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .apruns
            .iter()
            .map(|r| r.runtime_min() * r.nodes.len() as u64)
            .sum();
        busy as f64 / (n_nodes as u64 * horizon_min) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn schedule() -> (SimConfig, Schedule) {
        let cfg = SimConfig::tiny(3);
        let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).unwrap();
        let sched = Schedule::generate(&cfg, &catalog).unwrap();
        (cfg, sched)
    }

    #[test]
    fn generates_jobs_and_apruns() {
        let (_, s) = schedule();
        assert!(s.jobs().len() > 100, "jobs {}", s.jobs().len());
        assert!(s.apruns().len() >= s.jobs().len());
    }

    #[test]
    fn aprun_ids_are_indices() {
        let (_, s) = schedule();
        for (i, r) in s.apruns().iter().enumerate() {
            assert_eq!(r.id.0 as usize, i);
            assert!(r.end_min > r.start_min);
            assert!(!r.nodes.is_empty());
        }
    }

    #[test]
    fn job_apruns_are_sequential_and_share_nodes() {
        let (_, s) = schedule();
        for job in s.jobs() {
            let runs: Vec<&ApRun> = job
                .aprun_ids
                .iter()
                .map(|&id| &s.apruns()[id.0 as usize])
                .collect();
            for w in runs.windows(2) {
                assert_eq!(w[0].end_min, w[1].start_min);
                assert_eq!(w[0].nodes, w[1].nodes);
            }
            assert_eq!(runs[0].start_min, job.submit_min);
        }
    }

    #[test]
    fn node_timelines_do_not_overlap() {
        let (cfg, s) = schedule();
        let timelines = s.node_timelines(cfg.topology.n_nodes() as usize);
        for tl in &timelines {
            for w in tl.windows(2) {
                assert!(
                    w[0].end_min <= w[1].start_min,
                    "overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn runs_within_horizon() {
        let (cfg, s) = schedule();
        let horizon = cfg.total_minutes();
        for r in s.apruns() {
            assert!(r.end_min <= horizon);
        }
    }

    #[test]
    fn utilization_reasonable() {
        let (cfg, s) = schedule();
        let u = s.utilization(cfg.topology.n_nodes() as usize, cfg.total_minutes());
        assert!(u > 0.03 && u < 0.98, "utilization {u}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::tiny(5);
        let catalog = AppCatalog::generate(&cfg.workload, cfg.seed, cfg.days).unwrap();
        let a = Schedule::generate(&cfg, &catalog).unwrap();
        let b = Schedule::generate(&cfg, &catalog).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn node_ids_in_range_and_sorted() {
        let (cfg, s) = schedule();
        let n = cfg.topology.n_nodes();
        for r in s.apruns() {
            for w in r.nodes.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(r.nodes.iter().all(|nd| nd.0 < n));
        }
    }

    #[test]
    fn allocations_are_spatially_clustered() {
        // With forward scanning from a random origin, the median id gap
        // between consecutive allocated nodes should be small.
        let (_, s) = schedule();
        let mut gaps: Vec<u32> = Vec::new();
        for r in s.apruns() {
            for w in r.nodes.windows(2) {
                gaps.push(w[1].0 - w[0].0);
            }
        }
        if gaps.is_empty() {
            return; // all single-node runs; nothing to assert
        }
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(median <= 4, "median gap {median}");
    }
}
