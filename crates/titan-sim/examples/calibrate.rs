//! Prints the calibration statistics DESIGN.md §5 requires of the
//! simulator, for the tiny and scaled presets.
//!
//! Run with `cargo run --release -p titan-sim --example calibrate`.

use std::collections::BTreeMap;
use titan_sim::config::SimConfig;
use titan_sim::engine::generate_full;

fn report(name: &str, cfg: &SimConfig) {
    let t0 = std::time::Instant::now();
    let (trace, faults) = generate_full(cfg).expect("generation succeeds");
    let elapsed = t0.elapsed();
    let samples = trace.samples();
    let positives = samples.iter().filter(|s| s.is_affected()).count();
    let offenders = trace.offender_nodes();
    let n_nodes = cfg.topology.n_nodes() as usize;

    // Within offender-node samples: positive ratio (stage-2 balance).
    let offender_set: std::collections::BTreeSet<u32> = offenders.iter().map(|n| n.0).collect();
    let on_offender: Vec<_> = samples
        .iter()
        .filter(|s| offender_set.contains(&s.node.0))
        .collect();
    let pos_on_offender = on_offender.iter().filter(|s| s.is_affected()).count();

    // App concentration: share of SBEs held by the top 20% of apps.
    let mut per_app: BTreeMap<u32, u64> = BTreeMap::new();
    for s in samples {
        let app = trace.app_of(s.aprun).expect("valid aprun");
        *per_app.entry(app.0).or_insert(0) += s.sbe_true as u64;
    }
    let mut counts: Vec<u64> = per_app.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let top20: u64 = counts.iter().take(counts.len() / 5 + 1).sum();

    // Temperature / power shift between affected and free samples on
    // offender nodes.
    let mean = |aff: bool, f: &dyn Fn(&titan_sim::trace::SampleRecord) -> f64| -> f64 {
        let v: Vec<f64> = on_offender
            .iter()
            .filter(|s| s.is_affected() == aff)
            .map(|s| f(s))
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let dt = mean(true, &|s| s.avg_gpu_temp_c as f64) - mean(false, &|s| s.avg_gpu_temp_c as f64);
    let dp = mean(true, &|s| s.avg_gpu_power_w as f64) - mean(false, &|s| s.avg_gpu_power_w as f64);

    println!("== {name} ==  (generated in {elapsed:.1?})");
    println!(
        "  nodes={n_nodes} apruns={} samples={} jobs={}",
        trace.apruns().len(),
        samples.len(),
        trace.jobs().len()
    );
    println!(
        "  positive rate: {:.4}  (target ~0.02)",
        positives as f64 / samples.len().max(1) as f64
    );
    println!(
        "  offender nodes: {} ({:.1}% of nodes; weak ground truth {})",
        offenders.len(),
        100.0 * offenders.len() as f64 / n_nodes as f64,
        faults.n_weak()
    );
    println!(
        "  positives within offender samples: {:.3} (target ~0.33)",
        pos_on_offender as f64 / on_offender.len().max(1) as f64
    );
    println!(
        "  top-20% apps hold {:.1}% of SBEs (target >90%)",
        100.0 * top20 as f64 / total.max(1) as f64
    );
    println!("  affected-vs-free temp shift: {dt:+.2} C (target ~+3)");
    println!("  affected-vs-free power shift: {dp:+.2} W (target ~+15)");
    let util = trace.schedule().utilization(n_nodes, cfg.total_minutes());
    println!("  utilization: {util:.2}");
}

fn main() {
    for seed in [1u64, 2, 3] {
        report(&format!("tiny seed {seed}"), &SimConfig::tiny(seed));
    }
    report("scaled seed 42", &SimConfig::scaled(42));
}
